"""Chandra–Toueg consensus with an unreliable failure detector.

The tutorial's third way around FLP: "adding oracle (failure detector)".
Chandra & Toueg (JACM 1996) showed that the weak detector ◇S —
eventually, some correct process is never suspected — suffices to solve
consensus with a majority of correct processes (n > 2f), asynchrony
notwithstanding.

Two pieces, both here:

* :class:`HeartbeatFailureDetector` — an eventually-perfect-style
  detector: processes heartbeat; silence beyond an adaptive timeout
  means *suspect*; a heartbeat from a suspected process unsuspects it
  and raises its timeout (so permanent false suspicion dies out — the
  "eventually" in ◇S).
* :class:`CTProcess` — the rotating-coordinator algorithm: rounds with
  coordinator ``r mod n``; estimates (with timestamps) flow to the
  coordinator, it proposes the freshest one, processes ack — or *nack
  when the detector suspects the coordinator* — and a majority of acks
  decides, propagated by reliable broadcast.

Safety never depends on the detector being right; only liveness does —
which the tests demonstrate by running with an aggressively wrong
detector and checking agreement still holds.
"""

from dataclasses import dataclass

from ..core.exceptions import ConfigurationError
from ..core.node import Node
from ..core.registry import register_profile
from ..core.taxonomy import (
    Awareness,
    FailureModel,
    ProtocolProfile,
    Strategy,
    Synchrony,
)
from ..net.message import Message

PROFILE = register_profile(
    ProtocolProfile(
        name="chandra-toueg",
        synchrony=Synchrony.ASYNCHRONOUS,
        failure_model=FailureModel.CRASH,
        strategy=Strategy.PESSIMISTIC,
        awareness=Awareness.KNOWN,
        nodes_label="2f+1",
        phases=4,
        complexity="O(N)",
        notes="consensus from the <>S failure-detector oracle",
    )
)


@dataclass(frozen=True)
class CtHeartbeat(Message):
    pass


@dataclass(frozen=True)
class Estimate(Message):
    round_id: int
    value: object
    ts: int  # round in which the estimate was last adopted


@dataclass(frozen=True)
class CtProposal(Message):
    round_id: int
    value: object


@dataclass(frozen=True)
class Ack(Message):
    round_id: int
    positive: bool


@dataclass(frozen=True)
class CtDecide(Message):
    value: object


class HeartbeatFailureDetector:
    """Adaptive heartbeat failure detection for one observer process.

    ``suspects(name)`` is the oracle output.  False suspicions heal: a
    heartbeat from a suspected process unsuspects it *and* stretches its
    timeout, so any correct-but-slow process is eventually trusted
    forever — the ◇S property under partial synchrony.
    """

    def __init__(self, owner, peers, interval=1.0, initial_timeout=5.0):
        self.owner = owner
        self.interval = interval
        self.timeouts = {peer: initial_timeout for peer in peers
                         if peer != owner.name}
        self.last_seen = {peer: 0.0 for peer in self.timeouts}
        self.false_suspicions = 0
        self._was_suspected = set()

    def start(self):
        self.owner.set_periodic_timer(self.interval, self._beat)

    def _beat(self):
        self.owner.broadcast(CtHeartbeat())

    def observe(self, peer, now):
        """Record a heartbeat (or any message) from ``peer``."""
        if peer not in self.last_seen:
            return
        if peer in self._was_suspected and self._is_late(peer, now):
            # We were wrong about this one: back off its timeout.
            self.timeouts[peer] *= 2
            self.false_suspicions += 1
        self._was_suspected.discard(peer)
        self.last_seen[peer] = now

    def _is_late(self, peer, now):
        return now - self.last_seen[peer] > self.timeouts[peer]

    def suspects(self, peer, now):
        if peer == self.owner.name:
            return False
        if peer not in self.last_seen:
            return False
        late = self._is_late(peer, now)
        if late:
            self._was_suspected.add(peer)
        return late


class AlwaysSuspecting:
    """The worst admissible oracle: suspects everyone, always.  Kills
    every round's coordinator — liveness suffers, safety must not."""

    false_suspicions = 0

    def start(self):
        pass

    def observe(self, peer, now):
        pass

    def suspects(self, peer, now):
        return True


class CTProcess(Node):
    """One participant in Chandra–Toueg rotating-coordinator consensus."""

    #: How long a non-coordinator waits for the round's proposal before
    #: consulting the detector (polling granularity, not a synchrony
    #: assumption — a wrong detector only costs extra rounds).
    PROPOSAL_POLL = 2.0

    def __init__(self, sim, network, name, peers, initial, f,
                 detector_factory=None, max_rounds=500):
        super().__init__(sim, network, name)
        self.peers = list(peers)
        self.n = len(self.peers)
        if self.n <= 2 * f:
            raise ConfigurationError(
                "Chandra-Toueg needs n > 2f (n=%d, f=%d)" % (self.n, f)
            )
        self.f = f
        self.majority = self.n // 2 + 1
        self.estimate = initial
        self.ts = 0
        self.round = 1
        self.decided = None
        self.decided_round = None
        self.max_rounds = max_rounds
        if detector_factory is None:
            self.detector = HeartbeatFailureDetector(self, self.peers)
        else:
            self.detector = detector_factory(self)
        self._estimates = {}  # round -> {sender: (value, ts)}
        self._acks = {}  # round -> {sender: bool}
        self._proposal_value = {}  # round -> value we proposed (coordinator)
        self._proposal_seen = set()  # rounds whose proposal arrived
        self._acked = set()  # rounds we already acked/nacked
        self._proposed = set()  # rounds we coordinated

    def coordinator_of(self, round_id):
        return self.peers[round_id % self.n]

    # -- lifecycle ------------------------------------------------------------

    def on_start(self):
        self.detector.start()
        self._begin_round()

    def _begin_round(self):
        if self.decided is not None or self.round > self.max_rounds:
            return
        coordinator = self.coordinator_of(self.round)
        message = Estimate(self.round, self.estimate, self.ts)
        if coordinator == self.name:
            self._record_estimate(self.round, self.estimate, self.ts,
                                  self.name)
        else:
            self.send(coordinator, message)
        self._await_proposal(self.round)

    def _await_proposal(self, round_id):
        if self.decided is not None or round_id != self.round:
            return
        if round_id in self._proposal_seen:
            return
        coordinator = self.coordinator_of(round_id)
        if coordinator != self.name and \
                self.detector.suspects(coordinator, self.sim.now):
            # Phase 3, nack branch: suspected coordinator.
            self._send_ack(round_id, positive=False)
            self._advance_round()
            return
        self.set_timer(self.PROPOSAL_POLL, self._await_proposal, round_id)

    def _advance_round(self):
        self.round += 1
        self._begin_round()

    # -- heartbeats --------------------------------------------------------------

    def handle_ctheartbeat(self, msg, src):
        self.detector.observe(src, self.sim.now)

    # -- phase 1/2: estimates to the coordinator, proposal out ----------------------

    def handle_estimate(self, msg, src):
        self.detector.observe(src, self.sim.now)
        self._record_estimate(msg.round_id, msg.value, msg.ts, src)

    def _record_estimate(self, round_id, value, ts, sender):
        if self.coordinator_of(round_id) != self.name:
            return
        estimates = self._estimates.setdefault(round_id, {})
        estimates[sender] = (value, ts)
        if len(estimates) >= self.majority and round_id not in self._proposed:
            self._proposed.add(round_id)
            best_value, _best_ts = max(
                estimates.values(), key=lambda item: item[1]
            )
            self._proposal_value[round_id] = best_value
            proposal = CtProposal(round_id, best_value)
            self._on_proposal(proposal, self.name)
            for peer in self.peers:
                if peer != self.name:
                    self.send(peer, proposal)

    # -- phase 3: ack / nack ----------------------------------------------------------

    def handle_ctproposal(self, msg, src):
        self.detector.observe(src, self.sim.now)
        if src != self.coordinator_of(msg.round_id):
            return
        self._on_proposal(msg, src)

    def _on_proposal(self, msg, src):
        self._proposal_seen.add(msg.round_id)
        if msg.round_id < self.round or self.decided is not None:
            return
        self.estimate = msg.value
        self.ts = msg.round_id
        self._send_ack(msg.round_id, positive=True)
        if msg.round_id == self.round:
            self._advance_round_after_ack(msg.round_id)

    def _advance_round_after_ack(self, round_id):
        # Move on; a decision (if the coordinator gathers a majority)
        # arrives via reliable broadcast.
        if self.round == round_id:
            self.round += 1
            self._begin_round()

    def _send_ack(self, round_id, positive):
        if round_id in self._acked:
            return
        self._acked.add(round_id)
        coordinator = self.coordinator_of(round_id)
        ack = Ack(round_id, positive)
        if coordinator == self.name:
            self._record_ack(round_id, positive, self.name)
        else:
            self.send(coordinator, ack)

    # -- phase 4: decision --------------------------------------------------------------

    def handle_ack(self, msg, src):
        self.detector.observe(src, self.sim.now)
        self._record_ack(msg.round_id, msg.positive, src)

    def _record_ack(self, round_id, positive, sender):
        if self.coordinator_of(round_id) != self.name:
            return
        acks = self._acks.setdefault(round_id, {})
        acks[sender] = positive
        positives = sum(1 for value in acks.values() if value)
        if positives >= self.majority and self.decided is None:
            self._decide(self.proposal_value_of(round_id))

    def proposal_value_of(self, round_id):
        return self._proposal_value.get(round_id, self.estimate)

    def _decide(self, value):
        if self.decided is not None:
            return
        self.decided = value
        self.decided_round = self.round
        self.trace_local("decide", round=self.round, value=value)
        # Reliable broadcast: everyone relays the decision once.
        for peer in self.peers:
            if peer != self.name:
                self.send(peer, CtDecide(value))

    def handle_ctdecide(self, msg, src):
        if self.decided is None:
            self.decided = msg.value
            self.decided_round = self.round
            self.trace_local("learn", round=self.round, value=msg.value)
            for peer in self.peers:
                if peer != self.name:
                    self.send(peer, CtDecide(msg.value))


@dataclass
class CTResult:
    processes: list
    messages: int
    duration: float

    def decided_values(self):
        return [p.decided for p in self.processes if not p.crashed]

    def agreement(self):
        values = {v for v in self.decided_values() if v is not None}
        return len(values) <= 1

    def all_decided(self):
        return all(v is not None for v in self.decided_values())


def run_chandra_toueg(cluster, n=5, f=2, initial_values=None,
                      crash_indices=(), detector_factory=None,
                      horizon=3000.0, max_rounds=500):
    """Drive Chandra–Toueg consensus to (probable) decision."""
    names = ["ct%d" % i for i in range(n)]
    if initial_values is None:
        initial_values = ["v%d" % i for i in range(n)]
    processes = [
        cluster.add_node(CTProcess, name, names, initial_values[i], f,
                         detector_factory=detector_factory,
                         max_rounds=max_rounds)
        for i, name in enumerate(names)
    ]
    for index in crash_indices:
        processes[index].crash()
    cluster.start_all()
    cluster.run_until(
        lambda: all(p.decided is not None
                    for p in processes if not p.crashed),
        until=horizon,
    )
    return CTResult(
        processes=processes,
        messages=cluster.metrics.messages_total,
        duration=cluster.now,
    )
