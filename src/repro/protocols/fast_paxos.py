"""Fast Paxos (Lamport, Distributed Computing 2006), as in the tutorial.

Basic Paxos needs 3 message delays from client request to learning
(client → leader → replicas → leader).  Fast Paxos cuts that to 2 by
letting the client bypass the leader: the leader pre-authorises a *fast
round* with an **Any** message, after which each replica accepts the
first client value it sees and reports straight back.  The cost is the
bigger cluster — **3f+1 nodes instead of 2f+1** — because with quorums
of size 2f+1, any two fast quorums and a classic quorum intersect only
when n >= 3f+1 (3·(n−f) − 2n >= 1).

When two clients race, replicas split between values: a **collision**.
No value reaches a fast quorum, so the leader falls back to a *classic
round*: among the reported values it picks the one that could have been
chosen (reported by at least f+1 replicas — "the value with the majority
quorum if exists"), and runs an ordinary coordinated accept phase.
Hence the property box: 1 **or** 3 phases.
"""

from dataclasses import dataclass

from ..core.node import Node
from ..core.registry import register_profile
from ..core.taxonomy import (
    Awareness,
    FailureModel,
    ProtocolProfile,
    Strategy,
    Synchrony,
)
from ..net.message import Message

PROFILE = register_profile(
    ProtocolProfile(
        name="fast-paxos",
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        failure_model=FailureModel.CRASH,
        strategy=Strategy.OPTIMISTIC,
        awareness=Awareness.KNOWN,
        nodes_label="3f+1",
        phases=1,
        complexity="O(N)",
        notes="2 message delays in fast rounds; 1 or 3 phases (collision)",
    )
)


# -- messages ---------------------------------------------------------------


@dataclass(frozen=True)
class AnyMsg(Message):
    """Leader's pre-authorisation: accept the next client value directly."""

    round_id: int


@dataclass(frozen=True)
class ClientValue(Message):
    """A client's value, sent to every replica (the fast-round Accept!)."""

    round_id: int
    value: object


@dataclass(frozen=True)
class FastAccepted(Message):
    round_id: int
    value: object


@dataclass(frozen=True)
class ClassicAccept(Message):
    """Leader-coordinated accept during collision recovery."""

    round_id: int
    value: object


@dataclass(frozen=True)
class ClassicAccepted(Message):
    round_id: int
    value: object


@dataclass(frozen=True)
class Commit(Message):
    round_id: int
    value: object


# -- replicas ----------------------------------------------------------------


class FastPaxosReplica(Node):
    """An acceptor in Fast Paxos."""

    def __init__(self, sim, network, name, leader):
        super().__init__(sim, network, name)
        self.leader = leader
        self.fast_round = None  # round id enabled by an Any message
        self.accepted = {}  # round_id -> value
        self.decided = None
        self._pending = {}  # round_id -> first client value seen pre-Any

    def handle_anymsg(self, msg, src):
        if src != self.leader:
            return
        self.fast_round = msg.round_id
        # A client value may have raced ahead of the Any message; accept
        # the first one buffered for this round now.
        pending = self._pending.pop(msg.round_id, None)
        if pending is not None and msg.round_id not in self.accepted:
            self.accepted[msg.round_id] = pending
            self.send(self.leader, FastAccepted(msg.round_id, pending))

    def handle_clientvalue(self, msg, src):
        # Accept the first value seen in an enabled fast round.
        if self.fast_round != msg.round_id:
            self._pending.setdefault(msg.round_id, msg.value)
            return
        if msg.round_id in self.accepted:
            return  # already accepted a (possibly different) value
        self.accepted[msg.round_id] = msg.value
        self.send(self.leader, FastAccepted(msg.round_id, msg.value))

    def handle_classicaccept(self, msg, src):
        if src != self.leader:
            return
        # Classic rounds use a higher round id and override fast acceptance.
        self.accepted[msg.round_id] = msg.value
        self.send(self.leader, ClassicAccepted(msg.round_id, msg.value))

    def handle_commit(self, msg, src):
        self.decided = msg.value


class FastPaxosLeader(Node):
    """The coordinator: opens fast rounds, resolves collisions.

    Parameters
    ----------
    replicas:
        Names of the 3f+1 acceptors.
    f:
        Tolerated crash failures; quorums are 2f+1.
    """

    def __init__(self, sim, network, name, replicas, f):
        super().__init__(sim, network, name)
        self.replicas = list(replicas)
        if len(self.replicas) < 3 * f + 1:
            raise ValueError(
                "Fast Paxos needs n >= 3f+1 (n=%d, f=%d)" % (len(self.replicas), f)
            )
        self.f = f
        self.quorum = 2 * f + 1
        self.round_id = 1
        self.fast_votes = {}  # src -> value
        self.classic_votes = {}  # src -> value
        self.decided = None
        self.decided_at = None
        self.collision = False
        self.classic_round_id = None

    def on_start(self):
        if self.network.metrics is not None:
            self.network.metrics.mark_phase("fast-paxos", "any", self.sim.now)
        self.multicast(self.replicas, AnyMsg(self.round_id))

    # -- fast path ---------------------------------------------------------

    def handle_fastaccepted(self, msg, src):
        if self.decided is not None or msg.round_id != self.round_id:
            return
        if self.classic_round_id is not None:
            return  # already recovering
        self.fast_votes[src] = msg.value
        counts = self._counts(self.fast_votes)
        for value, count in counts.items():
            if count >= self.quorum:
                self._decide(value)
                return
        # Collision detection: once n−f replicas reported and no value can
        # still reach a fast quorum, start coordinated recovery.
        responded = len(self.fast_votes)
        outstanding = len(self.replicas) - responded
        best = max(counts.values(), default=0)
        if responded >= len(self.replicas) - self.f and best + outstanding < self.quorum:
            self._start_classic_round()
        elif responded == len(self.replicas) and best < self.quorum:
            self._start_classic_round()

    @staticmethod
    def _counts(votes):
        counts = {}
        for value in votes.values():
            counts[value] = counts.get(value, 0) + 1
        return counts

    # -- classic recovery ----------------------------------------------------

    def _start_classic_round(self):
        self.collision = True
        self.classic_round_id = self.round_id + 1
        if self.network.metrics is not None:
            self.network.metrics.mark_phase("fast-paxos", "classic", self.sim.now)
        counts = self._counts(self.fast_votes)
        # A value reported by >= f+1 replicas might have been chosen by a
        # fast quorum we didn't fully observe; it must be re-proposed.
        candidates = {v: c for v, c in counts.items() if c >= self.f + 1}
        pool = candidates if candidates else counts
        # Deterministic pick: highest count, then lexicographic value.
        value = sorted(pool.items(), key=lambda item: (-item[1], str(item[0])))[0][0]
        self.classic_votes = {}
        self.multicast(self.replicas, ClassicAccept(self.classic_round_id, value))

    def handle_classicaccepted(self, msg, src):
        if self.decided is not None or msg.round_id != self.classic_round_id:
            return
        self.classic_votes[src] = msg.value
        counts = self._counts(self.classic_votes)
        for value, count in counts.items():
            if count >= self.quorum:
                self._decide(value)
                return

    def _decide(self, value):
        self.decided = value
        self.decided_at = self.sim.now
        if self.network.metrics is not None:
            self.network.metrics.mark_phase("fast-paxos", "commit", self.sim.now)
        self.multicast(self.replicas, Commit(self.round_id, value))


class FastPaxosClient(Node):
    """Sends its value directly to all replicas at ``send_at``."""

    def __init__(self, sim, network, name, replicas, value, round_id=1, send_at=0.0):
        super().__init__(sim, network, name)
        self.replicas = list(replicas)
        self.value = value
        self.round_id = round_id
        self.send_at = send_at
        self.sent_time = None

    def on_start(self):
        self.set_timer(self.send_at, self._send)

    def _send(self):
        self.sent_time = self.sim.now
        self.multicast(self.replicas, ClientValue(self.round_id, self.value))


# -- driver -----------------------------------------------------------------


@dataclass
class FastPaxosResult:
    decided: object
    decided_at: float
    collision: bool
    messages: int
    leader: object
    replicas: list
    clients: list

    def learn_delay(self):
        """Message delays from the earliest client send to the leader's
        decision (with a unit-delay synchronous network this equals the
        paper's delay count: 2 fast, 4 after a collision)."""
        sends = [c.sent_time for c in self.clients if c.sent_time is not None]
        if not sends or self.decided_at is None:
            return None
        return self.decided_at - min(sends)


def run_fast_paxos(cluster, f=1, values=("X",), client_offsets=None, horizon=100.0):
    """Run one Fast Paxos instance with the given concurrent client values."""
    n = 3 * f + 1
    replica_names = ["r%d" % i for i in range(n)]
    leader = cluster.add_node(FastPaxosLeader, "leader", replica_names, f)
    replicas = cluster.add_nodes(FastPaxosReplica, replica_names, "leader")
    offsets = client_offsets or [0.5] * len(values)
    clients = [
        cluster.add_node(
            FastPaxosClient, "c%d" % i, replica_names, value, send_at=offsets[i]
        )
        for i, value in enumerate(values)
    ]
    cluster.start_all()
    cluster.run_until(lambda: leader.decided is not None, until=horizon)
    return FastPaxosResult(
        decided=leader.decided,
        decided_at=leader.decided_at,
        collision=leader.collision,
        messages=cluster.metrics.messages_total,
        leader=leader,
        replicas=replicas,
        clients=clients,
    )
