"""Zyzzyva: speculative Byzantine fault tolerance (Kotla et al., SOSP '07).

The tutorial's summary: replicas *speculatively* execute a request as
soon as they receive a valid ordered request from the primary —
commitment moves to the **client**:

* **Case 1** — the client receives **3f+1 matching replies**: every
  replica executed in the same order; the request completes in a single
  phase (request → order → reply, 3 message delays).
* **Case 2** — the client receives only **2f+1** matching replies within
  its timeout: it assembles a *commit certificate* (the 2f+1 matching
  replies) and sends it to all replicas; a replica receiving the
  certificate knows the request is durable and answers Local-Commit; the
  client completes on 2f+1 local-commits.

Prepare and commit collapse into one linear phase; the price is a more
complex view change (one extra round), which this module does not need
to exercise — the two figure cases and the speculative/PBFT latency gap
are the reproduced claims (E10).
"""

from dataclasses import dataclass

from ..core.exceptions import ConfigurationError
from ..core.node import Node
from ..core.registry import register_profile
from ..core.taxonomy import (
    Awareness,
    FailureModel,
    ProtocolProfile,
    Strategy,
    Synchrony,
)
from ..crypto.hashing import sha256_hex
from ..net.message import Message

PROFILE = register_profile(
    ProtocolProfile(
        name="zyzzyva",
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        failure_model=FailureModel.BYZANTINE,
        strategy=Strategy.OPTIMISTIC,
        awareness=Awareness.KNOWN,
        nodes_label="3f+1",
        phases=1,
        complexity="O(N)",
        notes="speculative execution; commitment moved to the client",
    )
)


# -- messages ---------------------------------------------------------------


@dataclass(frozen=True)
class ZyzRequest(Message):
    operation: object
    timestamp: float
    client: str


@dataclass(frozen=True)
class OrderReq(Message):
    """Primary's ordered request: sequence number + request + history."""

    view: int
    seq: int
    history: str
    request: ZyzRequest


@dataclass(frozen=True)
class SpecReply(Message):
    """A replica's speculative reply (sent straight to the client)."""

    view: int
    seq: int
    history: str
    replica: str
    client: str
    timestamp: float
    result: object


@dataclass(frozen=True)
class CommitCert(Message):
    """Case 2: the client's commit certificate — 2f+1 matching replies
    (here: the replica names plus the agreed (seq, history))."""

    view: int
    seq: int
    history: str
    replicas: tuple


@dataclass(frozen=True)
class LocalCommit(Message):
    view: int
    seq: int
    replica: str


class ZyzzyvaReplica(Node):
    """A Zyzzyva replica: execute speculatively, reply to the client."""

    def __init__(self, sim, network, name, peers, f, state_machine_factory=None):
        super().__init__(sim, network, name)
        self.peers = list(peers)
        self.n = len(self.peers)
        if self.n < 3 * f + 1:
            raise ConfigurationError(
                "Zyzzyva needs n >= 3f+1 (n=%d, f=%d)" % (self.n, f)
            )
        self.f = f
        self.view = 0
        self.next_seq = 0
        self.history = sha256_hex("genesis")
        self.max_cc_seq = -1  # highest sequence covered by a commit cert
        self.speculative_log = []  # (seq, operation)
        self._ordered = {}  # (client, timestamp) -> OrderReq (primary dedup)
        self._reply_cache = {}  # (client, timestamp) -> SpecReply
        if state_machine_factory is None:
            from .multipaxos import ListStateMachine
            state_machine_factory = ListStateMachine
        self.state_machine = state_machine_factory()

    @property
    def primary_name(self):
        return self.peers[self.view % self.n]

    @property
    def is_primary(self):
        return self.primary_name == self.name

    def handle_zyzrequest(self, msg, src):
        if not self.is_primary:
            # Backups forward to the primary (liveness; no view change here).
            self.send(self.primary_name, msg)
            return
        key = (msg.client, msg.timestamp)
        order = self._ordered.get(key)
        if order is None:
            seq = self.next_seq
            self.next_seq += 1
            history = sha256_hex(self.history, msg.operation, seq)
            order = OrderReq(self.view, seq, history, msg)
            self._ordered[key] = order
            if self.network.metrics is not None:
                self.network.metrics.mark_phase("zyzzyva", "order", self.sim.now)
            for peer in self.peers:
                if peer != self.name:
                    self.send(peer, order)
            self._speculative_execute(order)
        else:
            # Retransmission: resend the same ordered request and reply.
            for peer in self.peers:
                if peer != self.name:
                    self.send(peer, order)
            cached = self._reply_cache.get(key)
            if cached is not None:
                self.send(msg.client, cached)

    def handle_orderreq(self, msg, src):
        if src != self.primary_name or msg.view != self.view:
            return
        key = (msg.request.client, msg.request.timestamp)
        cached = self._reply_cache.get(key)
        if cached is not None:
            self.send(msg.request.client, cached)
            return
        expected = sha256_hex(self.history, msg.request.operation, msg.seq)
        if expected != msg.history:
            return  # inconsistent history: would trigger view change
        self._speculative_execute(msg)

    def _speculative_execute(self, order):
        self.history = order.history
        result = self.state_machine.apply(order.request.operation)
        self.speculative_log.append((order.seq, order.request.operation))
        reply = SpecReply(order.view, order.seq, order.history, self.name,
                          order.request.client, order.request.timestamp, result)
        self._reply_cache[(order.request.client, order.request.timestamp)] = reply
        self.send(order.request.client, reply)

    def handle_commitcert(self, msg, src):
        if len(set(msg.replicas)) >= 2 * self.f + 1:
            self.max_cc_seq = max(self.max_cc_seq, msg.seq)
            self.send(src, LocalCommit(msg.view, msg.seq, self.name))


class SlowReplica(ZyzzyvaReplica):
    """A replica that never answers — forcing the client down Case 2."""

    def _speculative_execute(self, order):
        # Executes but stays silent (crash-like behaviour towards clients).
        self.history = order.history
        self.state_machine.apply(order.request.operation)
        self.speculative_log.append((order.seq, order.request.operation))
        self._reply_cache[(order.request.client, order.request.timestamp)] = None

    def handle_orderreq(self, msg, src):
        if (msg.request.client, msg.request.timestamp) in self._reply_cache:
            return  # never re-executes, never replies
        super().handle_orderreq(msg, src)

    def handle_commitcert(self, msg, src):
        pass


class ZyzzyvaClient(Node):
    """The Zyzzyva client: completes case-1 fast or falls back to the
    commit-certificate path."""

    def __init__(self, sim, network, name, replicas, operations, f,
                 case2_timeout=4.0, retry_timeout=30.0):
        super().__init__(sim, network, name)
        self.replicas = list(replicas)
        self.n = len(self.replicas)
        self.f = f
        self.operations = list(operations)
        self.case2_timeout = case2_timeout
        self.retry_timeout = retry_timeout
        self.results = []
        self.latencies = []
        self.case1_completions = 0
        self.case2_completions = 0
        self._next = 0
        self._replies = {}  # replica -> SpecReply
        self._local_commits = set()
        self._committing = None
        self._sent_at = None
        self._case2_timer = None

    def on_start(self):
        self._send_next()

    def _send_next(self):
        if self.done:
            return
        self._replies = {}
        self._local_commits = set()
        self._committing = None
        self._sent_at = self.sim.now
        self.send(self.replicas[0],
                  ZyzRequest(self.operations[self._next], float(self._next),
                             self.name))
        self._case2_timer = self.set_timer(self.case2_timeout, self._try_case2)

    def handle_specreply(self, msg, src):
        if self.done or msg.timestamp != float(self._next):
            return
        self._replies[src] = msg
        groups = self._matching_groups()
        # Case 1: all 3f+1 replicas agree — complete immediately.
        for names in groups.values():
            if len(names) >= self.n:
                self._complete(case=1)
                return

    def _matching_groups(self):
        groups = {}
        for name, reply in self._replies.items():
            groups.setdefault((reply.seq, reply.history), set()).add(name)
        return groups

    def _try_case2(self):
        if self.done or self._committing is not None:
            return
        groups = self._matching_groups()
        for (seq, history), names in groups.items():
            if len(names) >= 2 * self.f + 1:
                self._committing = (seq, history)
                if self.network.metrics is not None:
                    self.network.metrics.mark_phase("zyzzyva", "commit",
                                                    self.sim.now)
                cert = CommitCert(0, seq, history, tuple(sorted(names)))
                self.multicast(self.replicas, cert)
                return
        # Fewer than 2f+1 matching replies: retransmit later.
        self._case2_timer = self.set_timer(self.retry_timeout, self._resend)

    def _resend(self):
        if not self.done and self._committing is None:
            self.multicast(
                self.replicas,
                ZyzRequest(self.operations[self._next], float(self._next),
                           self.name),
            )
            self._case2_timer = self.set_timer(self.case2_timeout, self._try_case2)

    def handle_localcommit(self, msg, src):
        if self.done or self._committing is None:
            return
        if msg.seq != self._committing[0]:
            return
        self._local_commits.add(src)
        if len(self._local_commits) >= 2 * self.f + 1:
            self._complete(case=2)

    def _complete(self, case):
        if case == 1:
            self.case1_completions += 1
        else:
            self.case2_completions += 1
        reply = next(iter(self._replies.values()))
        self.results.append(reply.result)
        self.latencies.append(self.sim.now - self._sent_at)
        if self._case2_timer is not None:
            self._case2_timer.cancel()
        self._next += 1
        self._send_next()

    @property
    def done(self):
        return self._next >= len(self.operations)


# -- driver -----------------------------------------------------------------


@dataclass
class ZyzzyvaResult:
    replicas: list
    clients: list
    messages: int
    duration: float

    def case_counts(self):
        ones = sum(c.case1_completions for c in self.clients)
        twos = sum(c.case2_completions for c in self.clients)
        return ones, twos

    def logs_consistent(self):
        merged = {}
        for replica in self.replicas:
            for seq, op in replica.speculative_log:
                if seq in merged and merged[seq] != op:
                    return False
                merged[seq] = op
        return True


def run_zyzzyva(cluster, f=1, operations=3, slow_replicas=(), horizon=2000.0):
    """Drive Zyzzyva; ``slow_replicas`` indices answer nothing, forcing
    the commit-certificate path."""
    n = 3 * f + 1
    names = ["r%d" % i for i in range(n)]
    replicas = []
    for i, name in enumerate(names):
        cls = SlowReplica if i in slow_replicas else ZyzzyvaReplica
        replicas.append(cluster.add_node(cls, name, names, f))
    client = cluster.add_node(
        ZyzzyvaClient, "c0", names,
        ["op-%d" % j for j in range(operations)], f,
    )
    cluster.start_all()
    cluster.run_until(lambda: client.done, until=horizon)
    return ZyzzyvaResult(
        replicas=replicas,
        clients=[client],
        messages=cluster.metrics.messages_total,
        duration=cluster.now,
    )
