"""MinBFT (Veronese et al., IEEE ToC 2013): BFT with 2f+1 replicas.

The tutorial's point: PBFT's 3f+1/3-phase cost exists because a
Byzantine node can *equivocate* — tell different things to different
quorums.  MinBFT removes that power with a tamper-proof **USIG**
(Unique Sequential Identifier Generator): every protocol message carries
a UI whose counter the trusted component assigns incrementally, so "a
Byzantine node may decide not to send a message or send it corrupted,
but it cannot send two different messages to different replicas" with
the same counter.  With equivocation gone, **2f+1 replicas and two
phases** (prepare, commit) suffice — "the same number of replicas,
communication phases and message complexity as Paxos".

Flow: client → primary REQUEST; primary broadcasts PREPARE with a fresh
UI; replicas verify the UI sequence and broadcast COMMIT (with their own
UIs); a request is accepted once f+1 matching COMMITs arrive (at least
one from a correct replica), executed in counter order, and the client
waits for f+1 matching replies.
"""

from dataclasses import dataclass

from ..core.exceptions import ConfigurationError
from ..core.node import Node
from ..core.registry import register_profile
from ..core.taxonomy import (
    Awareness,
    FailureModel,
    ProtocolProfile,
    Strategy,
    Synchrony,
)
from ..crypto.usig import UsigLogChecker
from ..net.message import Message

PROFILE = register_profile(
    ProtocolProfile(
        name="minbft",
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        failure_model=FailureModel.HYBRID,
        strategy=Strategy.PESSIMISTIC,
        awareness=Awareness.KNOWN,
        nodes_label="2f+1",
        phases=2,
        complexity="O(N)",
        notes="trusted USIG counter removes equivocation",
    )
)


@dataclass(frozen=True)
class MinRequest(Message):
    operation: object
    timestamp: float
    client: str


@dataclass(frozen=True)
class MinPrepare(Message):
    view: int
    request: MinRequest
    ui: object  # primary's UI — assigns the order


@dataclass(frozen=True)
class MinCommit(Message):
    view: int
    request: MinRequest
    primary_ui: object
    ui: object  # committing replica's own UI


@dataclass(frozen=True)
class MinReply(Message):
    replica: str
    timestamp: float
    result: object


class MinBftReplica(Node):
    """One MinBFT replica; replica 0 of ``peers`` is the view-0 primary."""

    def __init__(self, sim, network, name, peers, f, usig_authority,
                 state_machine_factory=None):
        super().__init__(sim, network, name)
        self.peers = list(peers)
        self.n = len(self.peers)
        if self.n < 2 * f + 1:
            raise ConfigurationError(
                "MinBFT needs n >= 2f+1 (n=%d, f=%d)" % (self.n, f)
            )
        self.f = f
        self.view = 0
        self.usig = usig_authority.provision(name)
        self._checkers = {
            peer: UsigLogChecker(self.usig, peer)
            for peer in self.peers if peer != name
        }
        # Out-of-order UIs are buffered until the counter gap closes —
        # the receiver must process each sender's stream gap-free.
        self._usig_inbox = {peer: {} for peer in self.peers if peer != name}
        if state_machine_factory is None:
            from .multipaxos import ListStateMachine
            state_machine_factory = ListStateMachine
        self.state_machine = state_machine_factory()
        self.executed = []  # (counter, operation)
        self._commit_votes = {}  # primary counter -> {replica}
        self._pending = {}  # primary counter -> MinPrepare
        self._next_to_execute = 1
        self._reply_cache = {}

    @property
    def primary_name(self):
        return self.peers[self.view % self.n]

    @property
    def is_primary(self):
        return self.primary_name == self.name

    def handle_minrequest(self, msg, src):
        if not self.is_primary:
            self.send(self.primary_name, msg)
            return
        key = (msg.client, msg.timestamp)
        cached = self._reply_cache.get(key)
        if cached is not None:
            self.send(msg.client, cached)
            return
        if key in self._reply_cache:
            return  # in progress
        self._reply_cache[key] = None
        ui = self.usig.create_ui("prepare", self.view, msg.operation,
                                 msg.client, msg.timestamp)
        if self.network.metrics is not None:
            self.network.metrics.mark_phase("minbft", "prepare", self.sim.now)
        prepare = MinPrepare(self.view, msg, ui)
        for peer in self.peers:
            if peer != self.name:
                self.send(peer, prepare)
        self._accept_prepare(prepare, from_self=True)

    def _usig_deliver(self, src, ui, values, continuation, msg):
        """Process ``msg`` only when ``ui`` is the next counter from
        ``src`` (buffering ahead-of-sequence messages, dropping replays
        and bad certificates)."""
        checker = self._checkers[src]
        if ui.counter < checker.expected:
            return  # replay
        if ui.counter > checker.expected:
            self._usig_inbox[src][ui.counter] = (ui, values, continuation, msg)
            return
        if not checker.accept(ui, *values):
            return  # forged certificate
        continuation(msg, src)
        inbox = self._usig_inbox[src]
        while checker.expected in inbox:
            next_ui, next_values, next_cont, next_msg = inbox.pop(checker.expected)
            if not checker.accept(next_ui, *next_values):
                return
            next_cont(next_msg, src)

    def handle_minprepare(self, msg, src):
        if src != self.primary_name or msg.view != self.view:
            return
        values = ("prepare", msg.view, msg.request.operation,
                  msg.request.client, msg.request.timestamp)
        self._usig_deliver(src, msg.ui, values,
                           lambda m, s: self._accept_prepare(m, from_self=False),
                           msg)

    def _accept_prepare(self, msg, from_self):
        # The PREPARE is the primary's own commit vote: its UI counter both
        # orders the request and contributes to the f+1 tally, so prepare
        # counters stay contiguous (1, 2, 3, ...) and double as sequence
        # numbers.
        counter = msg.ui.counter
        self._pending[counter] = msg
        self._record_commit(counter, self.primary_name)
        if from_self:
            return
        if self.network.metrics is not None:
            self.network.metrics.mark_phase("minbft", "commit", self.sim.now)
        ui = self.usig.create_ui("commit", self.view, counter)
        commit = MinCommit(self.view, msg.request, msg.ui, ui)
        self._record_commit(counter, self.name)
        for peer in self.peers:
            if peer != self.name:
                self.send(peer, commit)

    def handle_mincommit(self, msg, src):
        if msg.view != self.view:
            return
        self._usig_deliver(src, msg.ui,
                           ("commit", msg.view, msg.primary_ui.counter),
                           self._accept_commit, msg)

    def _accept_commit(self, msg, src):
        counter = msg.primary_ui.counter
        if counter not in self._pending:
            # Commit arrived before the prepare; the commit carries enough
            # to reconstruct the prepare (it embeds the primary's UI).
            if not self.usig.verify_ui(
                msg.primary_ui, "prepare", msg.view, msg.request.operation,
                msg.request.client, msg.request.timestamp
            ):
                return
            self._pending[counter] = MinPrepare(msg.view, msg.request,
                                                msg.primary_ui)
        self._record_commit(counter, src)

    def _record_commit(self, counter, sender):
        votes = self._commit_votes.setdefault(counter, set())
        votes.add(sender)
        self._execute_ready()

    def _execute_ready(self):
        # Execute strictly in primary-counter order, once f+1 commits
        # (necessarily including a correct replica) are in.
        while True:
            counter = self._next_to_execute
            votes = self._commit_votes.get(counter, set())
            prepare = self._pending.get(counter)
            if prepare is None or len(votes) < self.f + 1:
                return
            self._next_to_execute += 1
            result = self.state_machine.apply(prepare.request.operation)
            self.executed.append((counter, prepare.request.operation))
            reply = MinReply(self.name, prepare.request.timestamp, result)
            key = (prepare.request.client, prepare.request.timestamp)
            self._reply_cache[key] = reply
            self.send(prepare.request.client, reply)


class MinBftClient(Node):
    """MinBFT client: f+1 matching replies complete a request."""

    def __init__(self, sim, network, name, replicas, operations, f,
                 retry_timeout=30.0):
        super().__init__(sim, network, name)
        self.replicas = list(replicas)
        self.operations = list(operations)
        self.f = f
        self.retry_timeout = retry_timeout
        self.results = []
        self.latencies = []
        self._next = 0
        self._replies = {}
        self._sent_at = None
        self._timer = None

    def on_start(self):
        self._send_next()

    def _send_next(self):
        if self.done:
            return
        self._replies = {}
        self._sent_at = self.sim.now
        self.send(self.replicas[0],
                  MinRequest(self.operations[self._next], float(self._next),
                             self.name))
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.set_timer(self.retry_timeout, self._retry)

    def _retry(self):
        if not self.done:
            self.multicast(
                self.replicas,
                MinRequest(self.operations[self._next], float(self._next),
                           self.name),
            )
            self._timer = self.set_timer(self.retry_timeout, self._retry)

    def handle_minreply(self, msg, src):
        if self.done or msg.timestamp != float(self._next):
            return
        self._replies[src] = msg.result
        counts = {}
        for result in self._replies.values():
            counts[repr(result)] = counts.get(repr(result), 0) + 1
        if max(counts.values()) >= self.f + 1:
            self.results.append(msg.result)
            self.latencies.append(self.sim.now - self._sent_at)
            self._next += 1
            if self._timer is not None:
                self._timer.cancel()
            self._send_next()

    @property
    def done(self):
        return self._next >= len(self.operations)


@dataclass
class MinBftResult:
    replicas: list
    clients: list
    messages: int
    duration: float

    def logs_consistent(self):
        merged = {}
        for replica in self.replicas:
            for counter, op in replica.executed:
                if counter in merged and merged[counter] != op:
                    return False
                merged[counter] = op
        return True


def run_minbft(cluster, f=1, operations=3, horizon=2000.0):
    """Drive a MinBFT cluster of 2f+1 replicas."""
    n = 2 * f + 1
    names = ["r%d" % i for i in range(n)]
    replicas = cluster.add_nodes(
        MinBftReplica, names, names, f, cluster.usig_authority
    )
    client = cluster.add_node(
        MinBftClient, "c0", names,
        ["op-%d" % i for i in range(operations)], f,
    )
    cluster.start_all()
    cluster.run_until(lambda: client.done, until=horizon)
    return MinBftResult(
        replicas=replicas,
        clients=[client],
        messages=cluster.metrics.messages_total,
        duration=cluster.now,
    )
