"""Single-decree Paxos, as presented in the tutorial.

State per acceptor (the slides' variable box):

* ``BallotNum`` — latest ballot the acceptor took part in (phase 1),
* ``AcceptNum`` — latest ballot it accepted a value in (phase 2),
* ``AcceptVal`` — the latest accepted value.

Phase 1 (*prepare*): a would-be leader picks a new unique ballot and
asks a quorum to join it, learning the outcome of smaller ballots from
the acks.  Phase 2 (*accept*): it proposes its own value — or, if any
ack carried an accepted value, the value with the highest ``AcceptNum``
— and a value accepted by a phase-2 quorum is decided.  The decision is
propagated asynchronously.

The quorum system is pluggable: :class:`~repro.core.quorums.MajorityQuorum`
gives classic Paxos; handing in a
:class:`~repro.core.quorums.FlexibleQuorum` or
:class:`~repro.core.quorums.GridQuorum` gives Flexible Paxos with *no
changes to the algorithm* — exactly the paper's point.

Proposers restart phase 1 on a timer when preempted; the retry policy
(fixed vs randomized delay) is how the livelock experiment (E3) flips
between "competing proposers can livelock" and the paper's "one
solution: randomized delay before restarting".
"""

from dataclasses import dataclass, field

from ..core.ballot import Ballot
from ..core.framework import CCPhase, CCTrace
from ..core.node import Node
from ..core.quorums import MajorityQuorum
from ..core.registry import register_profile
from ..core.taxonomy import (
    Awareness,
    FailureModel,
    ProtocolProfile,
    Strategy,
    Synchrony,
)
from ..net.message import Message

PROFILE = register_profile(
    ProtocolProfile(
        name="paxos",
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        failure_model=FailureModel.CRASH,
        strategy=Strategy.PESSIMISTIC,
        awareness=Awareness.KNOWN,
        nodes_label="2f+1",
        phases=2,
        complexity="O(N)",
        notes="safety always; liveness only with a stable leader",
    )
)


# -- messages ---------------------------------------------------------------


@dataclass(frozen=True)
class Prepare(Message):
    """Phase-1a: join my ballot."""

    ballot: Ballot


@dataclass(frozen=True)
class PrepareAck(Message):
    """Phase-1b: promise + report of latest accepted (ballot, value)."""

    ballot: Ballot
    accept_num: Ballot
    accept_val: object


@dataclass(frozen=True)
class Accept(Message):
    """Phase-2a: proposal of ``value`` at ``ballot``."""

    ballot: Ballot
    value: object


@dataclass(frozen=True)
class AcceptedMsg(Message):
    """Phase-2b: the acceptor accepted (ballot, value)."""

    ballot: Ballot
    value: object


@dataclass(frozen=True)
class Nack(Message):
    """Rejection carrying the higher ballot the acceptor has promised."""

    promised: Ballot


@dataclass(frozen=True)
class Decide(Message):
    """Asynchronous decision dissemination."""

    ballot: Ballot
    value: object


# -- retry policies ----------------------------------------------------------


class FixedBackoff:
    """Deterministic restart delay — the policy that livelocks."""

    def __init__(self, delay=2.0):
        self.delay = delay

    def next_delay(self, rng):
        return self.delay


class RandomizedBackoff:
    """The paper's fix: random delay before restarting, giving 'other
    proposers a chance to finish choosing'."""

    def __init__(self, base=2.0, jitter=6.0):
        self.base = base
        self.jitter = jitter

    def next_delay(self, rng):
        return self.base + rng.uniform(0.0, self.jitter)


# -- acceptor ----------------------------------------------------------------


class PaxosAcceptor(Node):
    """An acceptor: persists ballot state, answers prepares and accepts."""

    def __init__(self, sim, network, name, send_nacks=True):
        super().__init__(sim, network, name)
        self.ballot_num = Ballot.ZERO
        self.accept_num = Ballot.ZERO
        self.accept_val = None
        self.decided = None
        self.send_nacks = send_nacks

    def handle_prepare(self, msg, src):
        if msg.ballot >= self.ballot_num:
            self.ballot_num = msg.ballot
            self.send(src, PrepareAck(msg.ballot, self.accept_num, self.accept_val))
        elif self.send_nacks:
            self.send(src, Nack(self.ballot_num))

    def handle_accept(self, msg, src):
        if msg.ballot >= self.ballot_num:
            self.ballot_num = msg.ballot
            self.accept_num = msg.ballot
            self.accept_val = msg.value
            self.trace_local("accept", ballot=msg.ballot)
            self.send(src, AcceptedMsg(msg.ballot, msg.value))
        elif self.send_nacks:
            self.send(src, Nack(self.ballot_num))

    def handle_decide(self, msg, src):
        self.decided = msg.value

    def on_restart(self):
        """Acceptor state is durable: the paper's model persists
        BallotNum/AcceptNum/AcceptVal across crash-recovery, so nothing
        is cleared here."""


# -- proposer ----------------------------------------------------------------


class PaxosProposer(Node):
    """A proposer that retries with higher ballots until a decision.

    Parameters
    ----------
    acceptors:
        Names of acceptor nodes.
    quorum_system:
        Any :class:`~repro.core.quorums.QuorumSystem` over the acceptors;
        defaults to majority quorums (classic Paxos).
    retry:
        Restart policy; ``RandomizedBackoff`` ensures liveness,
        ``FixedBackoff`` can livelock against a symmetric rival.
    initial_delay:
        Virtual-time offset before the first prepare (used to stagger
        competing proposers).
    """

    def __init__(
        self,
        sim,
        network,
        name,
        acceptors,
        value,
        quorum_system=None,
        retry=None,
        initial_delay=0.0,
        max_rounds=None,
    ):
        super().__init__(sim, network, name)
        self.acceptors = list(acceptors)
        self.my_value = value
        self.quorums = (
            quorum_system if quorum_system is not None
            else MajorityQuorum(self.acceptors)
        )
        self.retry = retry if retry is not None else RandomizedBackoff()
        self.initial_delay = initial_delay
        self.max_rounds = max_rounds

        self.ballot = Ballot.ZERO
        self.max_seen = Ballot.ZERO
        self.phase = "idle"  # idle | prepare | accept | decided
        self.prepare_acks = {}
        self.accept_acks = set()
        self.decided = None
        self.decided_at = None
        self.rounds = 0
        self.trace = CCTrace("paxos")
        self._retry_timer = None

    # -- round control ---------------------------------------------------

    def on_start(self):
        self.set_timer(self.initial_delay, self._new_round)

    def _new_round(self):
        if self.decided is not None:
            return
        if self.max_rounds is not None and self.rounds >= self.max_rounds:
            return
        self.rounds += 1
        metrics = self.network.metrics
        if metrics is not None and self.rounds == 1:
            # Request span: first prepare to this proposer's decision.
            metrics.start_request("paxos:%s" % self.name, self.sim.now)
        base = max(self.max_seen, self.ballot)
        self.ballot = base.successor(self.name)
        self.phase = "prepare"
        self.prepare_acks = {}
        self.accept_acks = set()
        self.trace.enter(CCPhase.LEADER_ELECTION, self.sim.now, str(self.ballot))
        if self.network.metrics is not None:
            self.network.metrics.mark_phase("paxos", "prepare", self.sim.now)
        self.multicast(self.acceptors, Prepare(self.ballot))
        self._arm_retry()

    def _arm_retry(self):
        if self._retry_timer is not None:
            self._retry_timer.cancel()
        delay = self.retry.next_delay(self.sim.rng)
        self._retry_timer = self.set_timer(delay, self._new_round)

    # -- phase 1 -----------------------------------------------------------

    def handle_prepareack(self, msg, src):
        if self.phase != "prepare" or msg.ballot != self.ballot:
            return
        self.prepare_acks[src] = (msg.accept_num, msg.accept_val)
        if not self.quorums.is_phase1_quorum(self.prepare_acks.keys()):
            return
        # Value discovery: adopt the value accepted at the highest ballot,
        # if any ack carried one; otherwise propose our own.
        self.trace.enter(CCPhase.VALUE_DISCOVERY, self.sim.now)
        best_num, best_val = Ballot.ZERO, None
        for accept_num, accept_val in self.prepare_acks.values():
            if accept_val is not None and accept_num > best_num:
                best_num, best_val = accept_num, accept_val
        proposal = best_val if best_val is not None else self.my_value
        self.phase = "accept"
        self.trace.enter(CCPhase.FT_AGREEMENT, self.sim.now)
        if self.network.metrics is not None:
            self.network.metrics.mark_phase("paxos", "accept", self.sim.now)
        self.multicast(self.acceptors, Accept(self.ballot, proposal))
        self._proposal = proposal

    # -- phase 2 -----------------------------------------------------------

    def handle_acceptedmsg(self, msg, src):
        if self.phase != "accept" or msg.ballot != self.ballot:
            return
        self.accept_acks.add(src)
        if not self.quorums.is_phase2_quorum(self.accept_acks):
            return
        self._decide(self._proposal)

    def handle_nack(self, msg, src):
        if msg.promised > self.max_seen:
            self.max_seen = msg.promised

    def handle_decide(self, msg, src):
        if self.decided is None:
            self._decide(msg.value, learned=True)

    def _decide(self, value, learned=False):
        self.decided = value
        self.decided_at = self.sim.now
        self.phase = "decided"
        metrics = self.network.metrics
        if metrics is not None and metrics.request_open("paxos:%s" % self.name):
            metrics.finish_request("paxos:%s" % self.name, self.sim.now,
                                   phases=self.rounds)
        if self._retry_timer is not None:
            self._retry_timer.cancel()
        self.trace.enter(CCPhase.DECISION, self.sim.now)
        self.trace_local("learn" if learned else "decide",
                         ballot=self.ballot, value=value)
        if not learned:
            if self.network.metrics is not None:
                self.network.metrics.mark_phase("paxos", "decide", self.sim.now)
            self.broadcast(Decide(self.ballot, value))


# -- drivers ----------------------------------------------------------------


@dataclass
class PaxosResult:
    """Outcome of a driver run, consumed by tests and benches."""

    decided_values: list
    decided_at: float
    rounds: int
    messages: int
    acceptors: list = field(default_factory=list)
    proposers: list = field(default_factory=list)

    @property
    def value(self):
        """The single decided value; ``None`` if nothing decided."""
        values = {v for v in self.decided_values if v is not None}
        if not values:
            return None
        if len(values) > 1:
            raise AssertionError("safety violated: %r" % (values,))
        return values.pop()

    @property
    def agreed(self):
        return self.value is not None


def chosen_value(acceptors, quorum_system):
    """The value chosen per the protocol definition: accepted by a phase-2
    quorum at the same ballot.  Returns ``None`` when no value is chosen.

    This is the ground-truth safety probe used by property tests — it
    inspects acceptor state directly instead of trusting decide messages.
    """
    by_ballot = {}
    for acceptor in acceptors:
        if acceptor.accept_val is not None:
            by_ballot.setdefault(
                (acceptor.accept_num, acceptor.accept_val), set()
            ).add(acceptor.name)
    for (_ballot, value), names in sorted(by_ballot.items(), reverse=True):
        if quorum_system.is_phase2_quorum(names):
            return value
    return None


def run_basic_paxos(
    cluster,
    n_acceptors=5,
    proposals=("X",),
    quorum_system=None,
    retry=None,
    stagger=0.0,
    crash_acceptors=(),
    horizon=500.0,
    max_rounds=None,
):
    """Run single-decree Paxos on ``cluster`` and return a
    :class:`PaxosResult`.

    Parameters
    ----------
    proposals:
        One value per competing proposer.
    stagger:
        Start offset between consecutive proposers.
    crash_acceptors:
        Indices of acceptors to crash at t=0 (before any traffic).
    """
    acceptor_names = ["a%d" % i for i in range(n_acceptors)]
    acceptors = cluster.add_nodes(PaxosAcceptor, acceptor_names)
    quorums = quorum_system if quorum_system is not None else MajorityQuorum(acceptor_names)
    proposers = []
    for index, value in enumerate(proposals):
        proposers.append(
            cluster.add_node(
                PaxosProposer,
                "p%d" % (index + 1),
                acceptor_names,
                value,
                quorum_system=quorums,
                retry=retry,
                initial_delay=index * stagger,
                max_rounds=max_rounds,
            )
        )
    for index in crash_acceptors:
        acceptors[index].crash()
    cluster.start_all()
    cluster.run_until(
        lambda: all(p.decided is not None for p in proposers), until=horizon
    )
    return PaxosResult(
        decided_values=[p.decided for p in proposers],
        decided_at=max(
            (p.decided_at for p in proposers if p.decided_at is not None),
            default=None,
        ),
        rounds=sum(p.rounds for p in proposers),
        messages=cluster.metrics.messages_total,
        acceptors=acceptors,
        proposers=proposers,
    )
