"""Flexible Paxos (Howard, Malkhi & Spiegelman, OPODIS 2016).

The observation the tutorial highlights: requiring *all* Paxos quorums
to intersect is too conservative.  Only **leader-election (phase-1)
quorums and replication (phase-2) quorums must intersect** — two
replication quorums never need to overlap.  So replication quorums can
be arbitrarily small (|Q1| + |Q2| > n, or grid rows vs columns), with
**no changes to the Paxos algorithm** — literally: this module runs the
unmodified :mod:`repro.protocols.paxos` machinery with a different
quorum system plugged in.

The module also provides the *negative* construction E6 needs: a bogus
quorum system whose Q1 and Q2 do **not** intersect, under which the same
algorithm happily decides two different values — demonstrating that the
generalized quorum condition is exactly what carries safety.
"""

from dataclasses import dataclass

from ..core.quorums import FlexibleQuorum, GridQuorum, QuorumSystem
from ..core.registry import register_profile
from ..core.taxonomy import (
    Awareness,
    FailureModel,
    ProtocolProfile,
    Strategy,
    Synchrony,
)
from .paxos import PaxosAcceptor, PaxosProposer, chosen_value, run_basic_paxos

PROFILE = register_profile(
    ProtocolProfile(
        name="flexible-paxos",
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        failure_model=FailureModel.CRASH,
        strategy=Strategy.PESSIMISTIC,
        awareness=Awareness.KNOWN,
        nodes_label="n with |Q1|+|Q2| > n",
        phases=2,
        complexity="O(N)",
        notes="replication quorums may be arbitrarily small",
    )
)


class UnsafeDisjointQuorum(QuorumSystem):
    """A deliberately broken quorum system: Q1 and Q2 both of size q
    with 2q <= n, so two disjoint 'quorums' can coexist.  Used only to
    demonstrate that Paxos's safety comes from quorum intersection."""

    def __init__(self, members, q):
        super().__init__(members)
        if 2 * q > self.n:
            raise ValueError("to be unsafe, need 2q <= n")
        self.q = q

    def is_phase1_quorum(self, nodes):
        return len(self._validate(nodes)) >= self.q

    is_phase2_quorum = is_phase1_quorum

    def phase1_size(self):
        return self.q

    phase2_size = phase1_size


def run_flexible_paxos(cluster, n_acceptors=6, q1=4, q2=3, proposals=("X",),
                       crash_acceptors=(), horizon=500.0):
    """Classic-shaped run with counting flexible quorums."""
    quorums = FlexibleQuorum(["a%d" % i for i in range(n_acceptors)], q1, q2)
    return run_basic_paxos(
        cluster,
        n_acceptors=n_acceptors,
        proposals=proposals,
        quorum_system=quorums,
        crash_acceptors=crash_acceptors,
        horizon=horizon,
    )


@dataclass
class GridPaxosResult:
    result: object
    grid: GridQuorum


def run_grid_paxos(cluster, rows=3, cols=4, proposals=("X",), horizon=500.0):
    """Flexible Paxos on a rows × cols grid: phase 2 needs one full row
    (cols acks), phase 1 one node from every row (rows acks)."""
    grid = GridQuorum(rows, cols)
    names = [name for row in grid.grid for name in row]
    acceptors = cluster.add_nodes(PaxosAcceptor, names)
    proposers = [
        cluster.add_node(
            PaxosProposer, "p%d" % (i + 1), names, value, quorum_system=grid
        )
        for i, value in enumerate(proposals)
    ]
    cluster.start_all()
    cluster.run_until(
        lambda: all(p.decided is not None for p in proposers), until=horizon
    )
    from .paxos import PaxosResult
    result = PaxosResult(
        decided_values=[p.decided for p in proposers],
        decided_at=max((p.decided_at for p in proposers
                        if p.decided_at is not None), default=None),
        rounds=sum(p.rounds for p in proposers),
        messages=cluster.metrics.messages_total,
        acceptors=acceptors,
        proposers=proposers,
    )
    return GridPaxosResult(result=result, grid=grid)


def demonstrate_unsafe_quorums(cluster, n_acceptors=6, q=3, horizon=300.0):
    """Run two isolated proposers on non-intersecting quorums and return
    the set of values *chosen* per the protocol definition — size 2 means
    safety was violated, which is the expected outcome.

    The two proposers are confined to disjoint halves of the acceptors
    (a network partition), so each assembles its own 'quorum'.
    """
    names = ["a%d" % i for i in range(n_acceptors)]
    quorums = UnsafeDisjointQuorum(names, q)
    acceptors = cluster.add_nodes(PaxosAcceptor, names)
    half = n_acceptors // 2
    proposer_a = cluster.add_node(
        PaxosProposer, "p1", names[:half], "A", quorum_system=quorums
    )
    proposer_b = cluster.add_node(
        PaxosProposer, "p2", names[half:], "B", quorum_system=quorums
    )
    cluster.network.partitions.split(
        ["p1"] + names[:half], ["p2"] + names[half:]
    )
    cluster.start_all()
    cluster.run_until(
        lambda: proposer_a.decided is not None and proposer_b.decided is not None,
        until=horizon,
    )
    chosen = set()
    for group in (acceptors[:half], acceptors[half:]):
        value = chosen_value(group, quorums)
        if value is not None:
            chosen.add(value)
    return chosen
