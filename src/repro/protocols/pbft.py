"""Practical Byzantine Fault Tolerance (Castro & Liskov, OSDI '99).

The slides' summary, implemented in full:

* **3f+1 replicas, quorums of 2f+1, intersection f+1** — so any two
  quorums share at least one *correct* replica.
* Three phases: **pre-prepare** picks the order (the primary assigns a
  sequence number), **prepare** ensures order within a view (2f matching
  prepares + the pre-prepare), **commit** ensures order across views
  (2f+1 commits).  A replica executes a request once it is committed and
  every lower sequence number has been executed, then replies to the
  client, which waits for **f+1 matching replies**.
* **View change** provides liveness when the primary fails: timeouts
  trigger VIEW-CHANGE messages carrying prepared certificates; the new
  primary needs 2f+1 of them and broadcasts NEW-VIEW with proof,
  re-proposing every prepared request.  Message complexity O(n²) in the
  normal case and O(n³) for view change (n² messages × O(n) certificate
  size).
* **Garbage collection**: replicas periodically checkpoint and a
  checkpoint becomes *stable* with 2f+1 matching CHECKPOINT messages,
  letting the log be truncated.

Why Paxos cannot simply be reused (the slides' question): a malicious
primary can assign the same sequence number to different requests, and
a Paxos majority quorum's intersection may contain only faulty nodes.
PBFT fixes both with the extra phase and the bigger quorum; the
``equivocate`` Byzantine primary behaviour in this module demonstrates
the attack and the defence.
"""

from dataclasses import dataclass

from ..core.exceptions import ConfigurationError
from ..core.node import Node
from ..core.registry import register_profile
from ..core.taxonomy import (
    Awareness,
    FailureModel,
    ProtocolProfile,
    Strategy,
    Synchrony,
)
from ..crypto.hashing import sha256_hex
from ..net.message import Message

PROFILE = register_profile(
    ProtocolProfile(
        name="pbft",
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        failure_model=FailureModel.BYZANTINE,
        strategy=Strategy.PESSIMISTIC,
        awareness=Awareness.KNOWN,
        nodes_label="3f+1",
        phases=3,
        complexity="O(N^2)",
        notes="view change O(N^3); client waits for f+1 matching replies",
    )
)


# -- messages ---------------------------------------------------------------


@dataclass(frozen=True)
class PbftRequest(Message):
    operation: object
    timestamp: float
    client: str
    #: Client signature over (operation, timestamp, client).  When the
    #: cluster runs with a key registry, replicas refuse unsigned or
    #: forged requests — the defence that stops a Byzantine primary from
    #: fabricating operations (see ForgingPrimary for the attack).
    signature: object = None


@dataclass(frozen=True)
class PrePrepare(Message):
    view: int
    seq: int
    digest: str
    request: PbftRequest


@dataclass(frozen=True)
class PbftPrepare(Message):
    view: int
    seq: int
    digest: str


@dataclass(frozen=True)
class PbftCommit(Message):
    view: int
    seq: int
    digest: str


@dataclass(frozen=True)
class PbftReply(Message):
    view: int
    timestamp: float
    client: str
    replica: str
    result: object


@dataclass(frozen=True)
class Checkpoint(Message):
    seq: int
    state_digest: str


@dataclass(frozen=True)
class ViewChange(Message):
    new_view: int
    last_stable_seq: int
    prepared_proofs: tuple  # ((seq, digest, view), ...)


@dataclass(frozen=True)
class NewView(Message):
    view: int
    view_change_senders: tuple
    pre_prepares: tuple  # ((seq, digest, request), ...)


def request_digest(request):
    return sha256_hex(request.operation, request.timestamp, request.client)


NULL_DIGEST = "null"
NULL_REQUEST = PbftRequest("no-op", -1.0, "_null")


class _SlotState:
    """Per-(seq) agreement bookkeeping.

    ``prepared_proof`` survives view changes: it is the (view, digest,
    request) of the highest view in which this replica prepared the slot,
    and is what VIEW-CHANGE messages carry — without it, a second view
    change could lose a possibly-committed request and violate safety.
    """

    __slots__ = ("digest", "request", "pre_prepared", "prepares", "commits",
                 "prepared", "committed", "executed", "prepared_proof")

    def __init__(self):
        self.digest = None
        self.request = None
        self.pre_prepared = False
        self.prepares = set()
        self.commits = set()
        self.prepared = False
        self.committed = False
        self.executed = False
        self.prepared_proof = None  # (view, digest, request)


class PbftReplica(Node):
    """One PBFT replica (primary when ``view % n == index``).

    Parameters
    ----------
    peers:
        All replica names, index order fixed; primary of view v is
        ``peers[v % n]``.
    f:
        Tolerated Byzantine faults; requires n >= 3f+1.
    checkpoint_interval:
        Checkpoint every this-many executed requests.
    """

    VIEW_CHANGE_TIMEOUT = 20.0

    def __init__(self, sim, network, name, peers, f,
                 state_machine_factory=None, checkpoint_interval=16,
                 keys=None):
        super().__init__(sim, network, name)
        self.keys = keys  # KeyRegistry for client-request verification
        self.peers = list(peers)
        self.n = len(self.peers)
        if self.n < 3 * f + 1:
            raise ConfigurationError(
                "PBFT needs n >= 3f+1 (n=%d, f=%d)" % (self.n, f)
            )
        self.f = f
        self.quorum = 2 * f + 1
        self.index = self.peers.index(name)
        #: Every peer but ourselves, in ``peers`` order — the fan-out
        #: list the hot phase loops multicast to.
        self.other_peers = [p for p in self.peers if p != name]
        if state_machine_factory is None:
            from .multipaxos import ListStateMachine
            state_machine_factory = ListStateMachine
        self.state_machine = state_machine_factory()
        self.checkpoint_interval = checkpoint_interval

        self.view = 0
        self.next_seq = 0
        self.slots = {}  # seq -> _SlotState
        self.last_executed = -1
        self.last_stable_seq = -1
        self.executed_requests = []
        self._seen_digests = {}  # digest -> seq (dedup at every replica)
        self._last_reply = {}  # (client, timestamp) -> PbftReply cache
        self._checkpoint_votes = {}  # seq -> {replica: digest}
        self._own_checkpoints = {}  # seq -> digest
        self._view_changes = {}  # new_view -> {sender: ViewChange}
        self._view_change_timer = None
        self._pending_requests = {}  # digest -> PbftRequest (awaiting order)
        self._future_preprepares = []  # stashed until the NEW-VIEW arrives
        self.view_changes_completed = 0

    # -- roles --------------------------------------------------------------

    @property
    def primary_name(self):
        return self.peers[self.view % self.n]

    @property
    def is_primary(self):
        return self.primary_name == self.name

    # -- client requests -------------------------------------------------------

    def _request_authentic(self, request):
        """With a key registry, only properly client-signed requests (or
        protocol no-ops) are acceptable."""
        if self.keys is None:
            return True
        if request.client == "_null":
            return True
        return self.keys.verify(request.signature, "pbft-request",
                                request.operation, request.timestamp,
                                request.client)

    def handle_pbftrequest(self, msg, src):
        if not self._request_authentic(msg):
            return
        digest = request_digest(msg)
        cached = self._last_reply.get((msg.client, msg.timestamp))
        if cached is not None:
            # Standard PBFT dedup: retransmit the cached reply rather than
            # re-ordering (and rather than re-arming liveness timers).
            self.send(msg.client, cached)
            return
        if digest in self._seen_digests:
            return  # already ordered / in progress
        if self.is_primary:
            self._assign(msg, digest)
        else:
            # Backup: remember the request and start the view-change timer;
            # if the primary never orders it, liveness machinery kicks in.
            self._pending_requests[digest] = msg
            self._arm_view_change_timer()

    def _assign(self, request, digest):
        seq = self.next_seq
        self.next_seq += 1
        self._seen_digests[digest] = seq
        if self.network.metrics is not None:
            self.network.metrics.mark_phase("pbft", "pre-prepare", self.sim.now)
        message = PrePrepare(self.view, seq, digest, request)
        self._accept_pre_prepare(message)
        self.multicast(self.other_peers, message)

    # -- phase 1: pre-prepare ---------------------------------------------------

    def handle_preprepare(self, msg, src):
        if msg.view > self.view:
            # We have not seen the NEW-VIEW yet; hold the proposal until
            # the view catches up instead of dropping it.
            self._future_preprepares.append((msg, src))
            return
        if src != self.primary_name or msg.view != self.view:
            return
        if msg.digest != NULL_DIGEST and request_digest(msg.request) != msg.digest:
            return  # corrupted proposal
        if msg.digest != NULL_DIGEST and not self._request_authentic(msg.request):
            return  # fabricated request: the primary cannot forge clients
        slot = self.slots.get(msg.seq)
        if slot is not None and slot.executed:
            return  # already executed this sequence number
        if slot is not None and slot.digest is not None and slot.digest != msg.digest:
            # Equivocation detected: the primary assigned this sequence
            # number to a different request already.  Refuse and push for
            # a view change.
            self._arm_view_change_timer()
            return
        self._accept_pre_prepare(msg)
        if self.network.metrics is not None:
            self.network.metrics.mark_phase("pbft", "prepare", self.sim.now)
        prepare = PbftPrepare(msg.view, msg.seq, msg.digest)
        self._record_prepare(msg.seq, msg.digest, self.name)
        self.multicast(self.other_peers, prepare)

    def _accept_pre_prepare(self, msg):
        slot = self.slots.setdefault(msg.seq, _SlotState())
        slot.digest = msg.digest
        slot.request = msg.request
        slot.pre_prepared = True
        # The pre-prepare doubles as the primary's prepare vote.
        slot.prepares.add(self.primary_name)
        self._seen_digests[msg.digest] = msg.seq
        self._pending_requests.pop(msg.digest, None)
        # A backup that accepted a client request keeps a timer running
        # until the request executes — otherwise a primary that orders
        # but never completes (e.g. by equivocating on sequence numbers)
        # would stall the system forever.
        if not self.is_primary and msg.request is not None \
                and msg.request.client != "_null":
            self._arm_view_change_timer()
        self._maybe_prepared(msg.seq)

    def _has_unexecuted_client_slots(self):
        return any(
            slot.pre_prepared and not slot.executed
            and slot.request is not None and slot.request.client != "_null"
            for slot in self.slots.values()
        )

    # -- phase 2: prepare ----------------------------------------------------

    def handle_pbftprepare(self, msg, src):
        if msg.view != self.view:
            return
        self._record_prepare(msg.seq, msg.digest, src)

    def _record_prepare(self, seq, digest, sender):
        slot = self.slots.setdefault(seq, _SlotState())
        if slot.digest is not None and slot.digest != digest:
            return  # prepare for a conflicting digest: ignore
        slot.prepares.add(sender)
        self._maybe_prepared(seq)

    def _maybe_prepared(self, seq):
        slot = self.slots.get(seq)
        if slot is None or slot.prepared or not slot.pre_prepared:
            return
        # prepared == pre-prepare + 2f prepares (incl. own) == quorum votes
        if len(slot.prepares) >= self.quorum:
            slot.prepared = True
            slot.prepared_proof = (self.view, slot.digest, slot.request)
            if self.network.metrics is not None:
                self.network.metrics.mark_phase("pbft", "commit", self.sim.now)
            commit = PbftCommit(self.view, seq, slot.digest)
            self._record_commit(seq, slot.digest, self.name)
            self.multicast(self.other_peers, commit)

    # -- phase 3: commit --------------------------------------------------------

    def handle_pbftcommit(self, msg, src):
        if msg.view != self.view:
            return
        self._record_commit(msg.seq, msg.digest, src)

    def _record_commit(self, seq, digest, sender):
        slot = self.slots.setdefault(seq, _SlotState())
        if slot.digest is not None and slot.digest != digest:
            return
        slot.commits.add(sender)
        self._maybe_committed(seq)

    def _maybe_committed(self, seq):
        slot = self.slots.get(seq)
        if slot is None or slot.committed or not slot.prepared:
            return
        if len(slot.commits) >= self.quorum:
            slot.committed = True
            self._execute_ready()

    # -- execution ----------------------------------------------------------

    def _execute_ready(self):
        while True:
            seq = self.last_executed + 1
            slot = self.slots.get(seq)
            if slot is None or not slot.committed or slot.executed:
                return
            slot.executed = True
            self.last_executed = seq
            request = slot.request
            is_real = request is not None and request.client != "_null"
            self.trace_local("execute", seq=seq, view=self.view,
                             op=request.operation if is_real else "null")
            if is_real:
                result = self.state_machine.apply(request.operation)
                self.executed_requests.append((seq, request.operation))
                reply = PbftReply(self.view, request.timestamp, request.client,
                                  self.name, result)
                self._last_reply[(request.client, request.timestamp)] = reply
                self.send(request.client, reply)
            if self._view_change_timer is not None \
                    and not self._pending_requests \
                    and not self._has_unexecuted_client_slots():
                self._view_change_timer.cancel()
                self._view_change_timer = None
            if (seq + 1) % self.checkpoint_interval == 0:
                self._take_checkpoint(seq)

    # -- checkpoints / garbage collection ------------------------------------

    def _take_checkpoint(self, seq):
        digest = sha256_hex([op for _seq, op in self.executed_requests])
        self._own_checkpoints[seq] = digest
        self._record_checkpoint_vote(seq, digest, self.name)
        message = Checkpoint(seq, digest)
        self.multicast(self.other_peers, message)

    def handle_checkpoint(self, msg, src):
        self._record_checkpoint_vote(msg.seq, msg.state_digest, src)

    def _record_checkpoint_vote(self, seq, digest, sender):
        votes = self._checkpoint_votes.setdefault(seq, {})
        votes[sender] = digest
        matching = [s for s, d in votes.items() if d == digest]
        if len(matching) >= self.quorum and seq > self.last_stable_seq:
            self._stabilise_checkpoint(seq)

    def _stabilise_checkpoint(self, seq):
        """2f+1 matching checkpoints: discard log entries up to seq."""
        self.last_stable_seq = seq
        for old_seq in [s for s in self.slots if s <= seq]:
            del self.slots[old_seq]
        for old_seq in [s for s in self._checkpoint_votes if s < seq]:
            del self._checkpoint_votes[old_seq]

    # -- view change ------------------------------------------------------------

    def _arm_view_change_timer(self):
        if self._view_change_timer is not None:
            return
        self._view_change_timer = self.set_timer(
            self.VIEW_CHANGE_TIMEOUT, self._start_view_change
        )

    def _start_view_change(self):
        self._view_change_timer = None
        self._send_view_change(self.view + 1)

    def _send_view_change(self, new_view):
        proofs = tuple(
            (seq, slot.prepared_proof[1], slot.prepared_proof[0],
             slot.prepared_proof[2])
            for seq, slot in sorted(self.slots.items())
            if slot.prepared_proof is not None and not slot.executed
        )
        if self.network.metrics is not None:
            self.network.metrics.mark_phase("pbft", "view-change", self.sim.now)
        message = ViewChange(new_view, self.last_stable_seq, proofs)
        self._record_view_change(message, self.name)
        self.multicast(self.other_peers, message)

    def handle_viewchange(self, msg, src):
        if msg.new_view <= self.view:
            return
        self._record_view_change(msg, src)
        # Joining amplification: if f+1 replicas want a newer view, join in
        # (standard PBFT liveness rule).
        votes = self._view_changes.get(msg.new_view, {})
        if len(votes) >= self.f + 1 and self.name not in votes:
            self._send_view_change(msg.new_view)

    def _record_view_change(self, msg, sender):
        votes = self._view_changes.setdefault(msg.new_view, {})
        votes[sender] = msg
        new_primary = self.peers[msg.new_view % self.n]
        if new_primary != self.name:
            return
        if len(votes) >= self.quorum and msg.new_view > self.view:
            self._become_primary(msg.new_view, dict(votes))

    def _become_primary(self, new_view, votes):
        # Gather every prepared request from the certificates and
        # re-propose it in the new view (highest-view proof wins per seq).
        best = {}  # seq -> (view, digest, request)
        min_stable = max(vc.last_stable_seq for vc in votes.values())
        for vc in votes.values():
            for seq, digest, view, request in vc.prepared_proofs:
                if seq <= min_stable:
                    continue
                current = best.get(seq)
                if current is None or view > current[0]:
                    best[seq] = (view, digest, request)
        max_seq = max(best.keys(), default=min_stable)
        max_seq = max(max_seq, self.last_executed)
        pre_prepares = []
        for seq in range(min_stable + 1, max_seq + 1):
            if seq in best:
                _view, digest, request = best[seq]
                pre_prepares.append((seq, digest, request))
            else:
                slot = self.slots.get(seq)
                if slot is not None and slot.executed:
                    # Locally executed: its digest is committed; carry it.
                    pre_prepares.append((seq, slot.digest, slot.request))
                else:
                    pre_prepares.append((seq, NULL_DIGEST, NULL_REQUEST))
        self.view = new_view
        self.view_changes_completed += 1
        self.trace_local("lead", view=new_view)
        self.next_seq = max_seq + 1
        self._enter_view(pre_prepares)
        message = NewView(new_view, tuple(sorted(votes)), tuple(pre_prepares))
        self.multicast(self.other_peers, message)
        # Locally run the agreement for the carried-over proposals (the
        # pre-prepare is implicit in the NEW-VIEW for the backups).
        for seq, digest, request in pre_prepares:
            self._accept_pre_prepare(
                PrePrepare(new_view, seq, digest,
                           request if request is not None else NULL_REQUEST)
            )
        # Re-propose any requests still waiting for an order.
        for digest, request in list(self._pending_requests.items()):
            if digest not in self._seen_digests:
                self._assign(request, digest)
        self._replay_future_preprepares()

    def handle_newview(self, msg, src):
        new_primary = self.peers[msg.view % self.n]
        if src != new_primary or msg.view <= self.view:
            return
        if len(msg.view_change_senders) < self.quorum:
            return  # insufficient proof
        self.view = msg.view
        self.view_changes_completed += 1
        max_seq = max((seq for seq, _d, _r in msg.pre_prepares),
                      default=self.last_executed)
        self.next_seq = max_seq + 1
        self._enter_view(msg.pre_prepares)
        # Run the prepare phase for the re-proposed requests.
        for seq, digest, request in msg.pre_prepares:
            self.handle_preprepare(
                PrePrepare(msg.view, seq, digest,
                           request if request is not None else NULL_REQUEST),
                src,
            )
        self._replay_future_preprepares()
        # Forward orphaned requests to the new primary so they don't have
        # to wait for a client retransmission.
        for request in self._pending_requests.values():
            self.send(src, request)

    def _replay_future_preprepares(self):
        stashed, self._future_preprepares = self._future_preprepares, []
        for msg, src in stashed:
            if msg.view >= self.view:
                self.handle_preprepare(msg, src)

    def _enter_view(self, pre_prepares):
        if self._view_change_timer is not None:
            self._view_change_timer.cancel()
            self._view_change_timer = None
        # Agreement state is re-earned in the new view, but prepared
        # proofs persist (they may certify a committed request).  Any
        # request *not* carried over and *not* locally prepared goes back
        # to the pending pool so it can be re-ordered from scratch.
        carried = {digest for _seq, digest, _request in pre_prepares}
        for seq in list(self.slots):
            slot = self.slots[seq]
            if slot.executed:
                continue
            if (slot.digest is not None and slot.digest not in carried
                    and slot.prepared_proof is None):
                self._seen_digests.pop(slot.digest, None)
                if slot.request is not None and slot.request.client != "_null":
                    self._pending_requests[slot.digest] = slot.request
                del self.slots[seq]
                continue
            slot.prepares = set()
            slot.commits = set()
            slot.prepared = False
            slot.pre_prepared = False
            slot.digest = None
            slot.request = None
        if self._pending_requests and not self.is_primary:
            self._arm_view_change_timer()


# -- Byzantine primaries -------------------------------------------------------


class EquivocatingPrimary(PbftReplica):
    """A malicious primary that equivocates on *ordering*: it tells half
    the replicas a request has sequence number k and the other half k+1.
    Neither assignment can gather 2f+1 prepares, the request stalls, the
    backups' timers fire, and a view change removes the attacker — the
    attack the slides use to motivate the prepare phase."""

    def _assign(self, request, digest):
        seq = self.next_seq
        self.next_seq += 2
        self._seen_digests[digest] = seq
        half = len(self.peers) // 2
        for position, peer in enumerate(self.peers):
            if peer == self.name:
                continue
            assigned = seq if position < half else seq + 1
            self.send(peer, PrePrepare(self.view, assigned, digest, request))
        # The faulty primary does not follow the protocol locally.


class ForgingPrimary(PbftReplica):
    """A malicious primary that *fabricates* a request no client sent and
    assigns the same sequence number to the real and fake requests for
    different halves.  Against an unauthenticated cluster (keys=None) the
    fabricated operation can actually commit; with client signatures the
    honest replicas refuse the forged pre-prepare outright — the library's
    demonstration of why PBFT requests are signed."""

    def _assign(self, request, digest):
        seq = self.next_seq
        self.next_seq += 1
        self._seen_digests[digest] = seq
        fake = PbftRequest(("forged-op",), request.timestamp, request.client,
                           signature=request.signature)  # stolen, stale sig
        fake_digest = request_digest(fake)
        half = len(self.peers) // 2
        for position, peer in enumerate(self.peers):
            if peer == self.name:
                continue
            if position < half:
                self.send(peer, PrePrepare(self.view, seq, digest, request))
            else:
                self.send(peer, PrePrepare(self.view, seq, fake_digest, fake))


class SilentPrimary(PbftReplica):
    """A primary that accepts requests and never orders them — the
    failure that exercises the view-change path."""

    def _assign(self, request, digest):
        self._seen_digests[digest] = self.next_seq  # swallow silently


class PbftClient(Node):
    """PBFT client: sends to the primary, accepts f+1 matching replies,
    broadcasts to all replicas on timeout (the standard liveness path)."""

    def __init__(self, sim, network, name, replicas, operations, f,
                 retry_timeout=30.0, signer=None):
        super().__init__(sim, network, name)
        self.replicas = list(replicas)
        self.operations = list(operations)
        self.f = f
        self.retry_timeout = retry_timeout
        self.signer = signer  # signs requests when the cluster verifies them
        self.results = []
        self.latencies = []
        self._next = 0
        self._replies = {}
        self._sent_at = None
        self._timer = None
        self._broadcasted = False

    def on_start(self):
        self._send_next()

    def _current_request(self):
        # Timestamp doubles as the request identifier.
        operation = self.operations[self._next]
        timestamp = float(self._next)
        signature = None
        if self.signer is not None:
            signature = self.signer.sign("pbft-request", operation, timestamp,
                                         self.name)
        return PbftRequest(operation, timestamp, self.name, signature)

    def _send_next(self):
        if self.done:
            return
        self._replies = {}
        self._sent_at = self.sim.now
        self._broadcasted = False
        metrics = self.network.metrics
        if metrics is not None:
            metrics.start_request("pbft:%s-%d" % (self.name, self._next),
                                  self.sim.now)
        self.send(self.replicas[0], self._current_request())
        self._arm_timer()

    def _arm_timer(self):
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.set_timer(self.retry_timeout, self._retry)

    def _retry(self):
        if self.done:
            return
        # Retransmit to every replica; backups will force a view change
        # if the primary is the problem.
        self._broadcasted = True
        self.multicast(self.replicas, self._current_request())
        self._arm_timer()

    def handle_pbftreply(self, msg, src):
        if self.done or msg.timestamp != float(self._next):
            return
        self._replies[src] = msg.result
        matching = {}
        for result in self._replies.values():
            key = repr(result)
            matching[key] = matching.get(key, 0) + 1
        if max(matching.values()) >= self.f + 1:
            metrics = self.network.metrics
            label = "pbft:%s-%d" % (self.name, self._next)
            if metrics is not None and metrics.request_open(label):
                metrics.finish_request(label, self.sim.now)
            self.results.append(self._replies[src])
            self.latencies.append(self.sim.now - self._sent_at)
            self._next += 1
            if self._timer is not None:
                self._timer.cancel()
            self._send_next()

    @property
    def done(self):
        return self._next >= len(self.operations)


# -- driver -----------------------------------------------------------------


@dataclass
class PbftResult:
    replicas: list
    clients: list
    messages: int
    duration: float

    def honest_replicas(self):
        return [
            r for r in self.replicas
            if type(r) is PbftReplica and not r.crashed
        ]

    def executed_logs(self):
        return [r.executed_requests for r in self.honest_replicas()]

    def logs_consistent(self):
        merged = {}
        for log in self.executed_logs():
            for seq, op in log:
                if seq in merged and merged[seq] != op:
                    return False
                merged[seq] = op
        return True


def run_pbft(
    cluster,
    f=1,
    n_clients=1,
    operations_per_client=3,
    primary_class=PbftReplica,
    crash_primary_at=None,
    horizon=3000.0,
    checkpoint_interval=16,
    authenticate_clients=False,
):
    """Drive a PBFT cluster; ``primary_class`` selects the replica-0
    behaviour (honest, equivocating, forging, silent).  With
    ``authenticate_clients`` replicas verify client signatures via the
    cluster's key registry."""
    n = 3 * f + 1
    names = ["r%d" % i for i in range(n)]
    keys = cluster.keys if authenticate_clients else None
    replicas = []
    for i, name in enumerate(names):
        cls = primary_class if i == 0 else PbftReplica
        replicas.append(
            cluster.add_node(cls, name, names, f,
                             checkpoint_interval=checkpoint_interval,
                             keys=keys)
        )
    clients = [
        cluster.add_node(
            PbftClient,
            "c%d" % i,
            names,
            ["op-%d-%d" % (i, j) for j in range(operations_per_client)],
            f,
            signer=cluster.keys.signer("c%d" % i) if authenticate_clients
            else None,
        )
        for i in range(n_clients)
    ]
    if crash_primary_at is not None:
        cluster.sim.schedule(crash_primary_at, replicas[0].crash)
    cluster.start_all()

    def all_done():
        # Checked after every event: a plain loop, no generator frame.
        for client in clients:
            if not client.done:
                return False
        return True

    cluster.run_until(all_done, until=horizon)
    return PbftResult(
        replicas=replicas,
        clients=clients,
        messages=cluster.metrics.messages_total,
        duration=cluster.now,
    )
