"""CheapBFT (Kapitza et al., EuroSys 2012): resource-efficient BFT.

The tutorial's three sub-protocols:

1. **CheapTiny** — the default: only **f+1 active replicas** run the
   agreement (prepare/commit with USIG certificates); the other f
   replicas are *passive* and merely apply state updates shipped by the
   actives.  With zero redundancy among actives, CheapTiny tolerates no
   faults itself —
2. **CheapSwitch** — any suspicion (a client that cannot collect f+1
   matching replies PANICs) makes the replicas broadcast PANIC, agree on
   an abort history (here: attested USIG counters + executed prefixes)
   and switch to
3. **MinBFT** — the full 2f+1-replica protocol of
   :mod:`repro.protocols.minbft`, which handles the fault; the system
   could later switch back (not modelled — the experiment measures the
   forward switch).

The payoff measured in E12: CheapTiny's normal-case message count with
f+1 senders versus MinBFT's with 2f+1.
"""

from dataclasses import dataclass

from ..core.registry import register_profile
from ..core.taxonomy import (
    Awareness,
    FailureModel,
    ProtocolProfile,
    Strategy,
    Synchrony,
)
from ..net.message import Message
from .minbft import MinBftClient, MinBftReplica, MinRequest, MinReply

PROFILE = register_profile(
    ProtocolProfile(
        name="cheapbft",
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        failure_model=FailureModel.HYBRID,
        strategy=Strategy.OPTIMISTIC,
        awareness=Awareness.KNOWN,
        nodes_label="f+1 active / 2f+1",
        phases=2,
        complexity="O(N)",
        notes="CheapTiny normal case; PANIC switches to MinBFT",
    )
)


@dataclass(frozen=True)
class TinyPrepare(Message):
    request: MinRequest
    ui: object


@dataclass(frozen=True)
class TinyCommit(Message):
    primary_ui: object
    request: MinRequest
    ui: object


@dataclass(frozen=True)
class StateUpdate(Message):
    """Shipped from actives to passives: the executed operation."""

    counter: int
    operation: object


@dataclass(frozen=True)
class Panic(Message):
    reason: str


@dataclass(frozen=True)
class SwitchInfo(Message):
    """CheapSwitch abort-history contribution: attested USIG counter and
    the sender's executed history (so laggards can catch up)."""

    usig_counter: int
    history: tuple  # ((("tiny", counter), operation), ...)


class CheapBftReplica(MinBftReplica):
    """A CheapBFT replica: CheapTiny while all is well, MinBFT after a
    PANIC.

    Parameters
    ----------
    active:
        The f+1 active replica names (must be a prefix-compatible subset
        of ``peers``); the first is the CheapTiny primary.
    """

    def __init__(self, sim, network, name, peers, f, usig_authority,
                 active, state_machine_factory=None):
        super().__init__(sim, network, name, peers, f, usig_authority,
                         state_machine_factory=state_machine_factory)
        self.active = list(active)
        if len(self.active) != f + 1:
            raise ValueError("CheapTiny needs exactly f+1 active replicas")
        self.mode = "tiny"
        self.is_active = name in self.active
        self._tiny_votes = {}  # counter -> {replica}
        self._tiny_pending = {}  # counter -> TinyPrepare
        self._tiny_next = 1
        self._switch_info = {}
        self._panicked = False
        self.switched_at = None

    # -- CheapTiny ------------------------------------------------------------

    @property
    def tiny_primary(self):
        return self.active[0]

    def handle_minrequest(self, msg, src):
        if self.mode != "tiny":
            super().handle_minrequest(msg, src)
            return
        if self.name != self.tiny_primary:
            if self.is_active or True:
                self.send(self.tiny_primary, msg)
            return
        key = (msg.client, msg.timestamp)
        cached = self._reply_cache.get(key)
        if cached is not None:
            self.send(msg.client, cached)
            return
        if key in self._reply_cache:
            return
        self._reply_cache[key] = None
        ui = self.usig.create_ui("tiny-prepare", msg.operation, msg.client,
                                 msg.timestamp)
        if self.network.metrics is not None:
            self.network.metrics.mark_phase("cheapbft", "tiny-prepare",
                                            self.sim.now)
        prepare = TinyPrepare(msg, ui)
        for peer in self.active:
            if peer != self.name:
                self.send(peer, prepare)
        self._tiny_accept_prepare(prepare, from_self=True)

    def handle_tinyprepare(self, msg, src):
        if self.mode != "tiny" or src != self.tiny_primary or not self.is_active:
            return
        values = ("tiny-prepare", msg.request.operation, msg.request.client,
                  msg.request.timestamp)
        self._usig_deliver(src, msg.ui, values,
                           lambda m, s: self._tiny_accept_prepare(m, from_self=False),
                           msg)

    def _tiny_accept_prepare(self, msg, from_self):
        counter = msg.ui.counter
        self._tiny_pending[counter] = msg
        self._tiny_vote(counter, self.tiny_primary)
        if from_self:
            return
        if self.network.metrics is not None:
            self.network.metrics.mark_phase("cheapbft", "tiny-commit",
                                            self.sim.now)
        ui = self.usig.create_ui("tiny-commit", counter)
        commit = TinyCommit(msg.ui, msg.request, ui)
        self._tiny_vote(counter, self.name)
        for peer in self.active:
            if peer != self.name:
                self.send(peer, commit)

    def handle_tinycommit(self, msg, src):
        if self.mode != "tiny" or not self.is_active:
            return
        self._usig_deliver(src, msg.ui, ("tiny-commit", msg.primary_ui.counter),
                           self._tiny_accept_commit, msg)

    def _tiny_accept_commit(self, msg, src):
        counter = msg.primary_ui.counter
        if counter not in self._tiny_pending:
            if not self.usig.verify_ui(msg.primary_ui, "tiny-prepare",
                                       msg.request.operation,
                                       msg.request.client,
                                       msg.request.timestamp):
                return
            self._tiny_pending[counter] = TinyPrepare(msg.request, msg.primary_ui)
        self._tiny_vote(counter, src)

    def _tiny_vote(self, counter, sender):
        votes = self._tiny_votes.setdefault(counter, set())
        votes.add(sender)
        self._tiny_execute_ready()

    def _tiny_execute_ready(self):
        # CheapTiny needs *all* f+1 active replicas — no slack at all.
        while True:
            counter = self._tiny_next
            votes = self._tiny_votes.get(counter, set())
            prepare = self._tiny_pending.get(counter)
            if prepare is None or len(votes) < self.f + 1:
                return
            self._tiny_next += 1
            result = self.state_machine.apply(prepare.request.operation)
            self.executed.append((("tiny", counter), prepare.request.operation))
            reply = MinReply(self.name, prepare.request.timestamp, result)
            key = (prepare.request.client, prepare.request.timestamp)
            self._reply_cache[key] = reply
            self.send(prepare.request.client, reply)
            if self.name == self.tiny_primary:
                update = StateUpdate(counter, prepare.request.operation)
                for peer in self.peers:
                    if peer not in self.active:
                        self.send(peer, update)

    def handle_stateupdate(self, msg, src):
        if src != self.tiny_primary or self.is_active:
            return
        # Passive replica: apply updates strictly in order.
        self._tiny_pending[msg.counter] = msg.operation
        while self._tiny_next in self._tiny_pending:
            operation = self._tiny_pending.pop(self._tiny_next)
            self.state_machine.apply(operation)
            self.executed.append((("tiny", self._tiny_next), operation))
            self._tiny_next += 1

    # -- CheapSwitch ------------------------------------------------------------

    def handle_panic(self, msg, src):
        if self.mode != "tiny":
            return
        if not self._panicked:
            self._panicked = True
            if self.network.metrics is not None:
                self.network.metrics.mark_phase("cheapbft", "panic", self.sim.now)
            for peer in self.peers:
                if peer != self.name:
                    self.send(peer, Panic(msg.reason))
            info = SwitchInfo(self.usig.counter, tuple(self.executed))
            self._record_switch_info(self.name, info)
            for peer in self.peers:
                if peer != self.name:
                    self.send(peer, info)

    def handle_switchinfo(self, msg, src):
        if self.mode != "tiny":
            return
        self.handle_panic(Panic("peer"), src)  # join the panic if new
        self._record_switch_info(src, msg)

    #: Settle time between reaching the f+1 threshold and switching, so
    #: every live replica's contribution arrives and all replicas compute
    #: the same contributor set (hence the same new primary).
    SWITCH_SETTLE = 5.0

    def _record_switch_info(self, sender, info):
        self._switch_info[sender] = info
        # Need f+1 contributions beyond any possible faulty set to pin the
        # abort history; with 2f+1 replicas and <= f faulty, f+1 suffices.
        if len(self._switch_info) == self.f + 1:
            self.set_timer(self.SWITCH_SETTLE, self._switch_to_minbft)

    def _switch_to_minbft(self):
        if self.mode != "tiny":
            return
        self.mode = "minbft"
        self.switched_at = self.sim.now
        if self.network.metrics is not None:
            self.network.metrics.mark_phase("cheapbft", "switch", self.sim.now)
        # Fast-forward every checker past the counters consumed in the
        # tiny epoch (the attested abort history).
        for sender, info in self._switch_info.items():
            checker = self._checkers.get(sender)
            if checker is not None and info.usig_counter + 1 > checker.expected:
                checker.expected = info.usig_counter + 1
                self._usig_inbox[sender] = {}
        # Catch up: adopt the longest executed history among contributors
        # (crash-only actives in this model; real CheapBFT certifies the
        # abort history against f+1 matching segments).
        longest = max(
            (info.history for info in self._switch_info.values()),
            key=len,
            default=(),
        )
        if len(longest) > len(self.executed):
            for key, operation in longest[len(self.executed):]:
                self.state_machine.apply(operation)
                self.executed.append((key, operation))
                self._tiny_next = max(self._tiny_next, key[1] + 1)
        # Unfinished tiny-epoch requests must be re-orderable in MinBFT.
        for key in [k for k, v in self._reply_cache.items() if v is None]:
            del self._reply_cache[key]
        # The MinBFT epoch starts from the new primary's next counter.
        # Primary choice: the lowest-indexed replica that contributed.
        contributors = [p for p in self.peers if p in self._switch_info]
        new_primary = contributors[0]
        self.view = self.peers.index(new_primary)
        primary_info = self._switch_info.get(new_primary)
        self._next_to_execute = primary_info.usig_counter + 1

    # MinBFT-side execution must tag its entries with the epoch so the
    # cross-replica consistency check doesn't mix counter namespaces.
    def _execute_ready(self):
        while True:
            counter = self._next_to_execute
            votes = self._commit_votes.get(counter, set())
            prepare = self._pending.get(counter)
            if prepare is None or len(votes) < self.f + 1:
                return
            self._next_to_execute += 1
            result = self.state_machine.apply(prepare.request.operation)
            self.executed.append((("minbft", counter),
                                  prepare.request.operation))
            reply = MinReply(self.name, prepare.request.timestamp, result)
            key = (prepare.request.client, prepare.request.timestamp)
            self._reply_cache[key] = reply
            self.send(prepare.request.client, reply)


class CrashedActive(CheapBftReplica):
    """An active replica that dies mid-run (driver crashes it on cue)."""


class CheapBftClient(MinBftClient):
    """MinBFT client that PANICs when replies don't arrive in time."""

    def __init__(self, sim, network, name, replicas, operations, f,
                 panic_timeout=15.0, retry_timeout=30.0):
        super().__init__(sim, network, name, replicas, operations, f,
                         retry_timeout=retry_timeout)
        self.panic_timeout = panic_timeout
        self.panics_sent = 0
        self._panic_timer = None

    def _send_next(self):
        super()._send_next()
        if not self.done:
            if self._panic_timer is not None:
                self._panic_timer.cancel()
            self._panic_timer = self.set_timer(self.panic_timeout, self._panic,
                                               self._next)

    def _panic(self, expected_next):
        if self.done or self._next != expected_next:
            return  # the request completed meanwhile
        self.panics_sent += 1
        self.multicast(self.replicas, Panic("client-timeout"))
        # Resend the request so the post-switch protocol picks it up.
        self.multicast(
            self.replicas,
            MinRequest(self.operations[self._next], float(self._next),
                       self.name),
        )
        self._panic_timer = self.set_timer(self.panic_timeout, self._panic,
                                           self._next)


@dataclass
class CheapBftResult:
    replicas: list
    clients: list
    messages: int
    duration: float

    def modes(self):
        return [r.mode for r in self.replicas]

    def logs_consistent(self):
        merged = {}
        for replica in self.replicas:
            for key, op in replica.executed:
                if key in merged and merged[key] != op:
                    return False
                merged[key] = op
        return True


def run_cheapbft(cluster, f=1, operations=3, crash_active_at=None,
                 horizon=2000.0):
    """Drive CheapBFT; optionally crash one active replica to force the
    CheapSwitch → MinBFT path."""
    n = 2 * f + 1
    names = ["r%d" % i for i in range(n)]
    active = names[: f + 1]
    replicas = cluster.add_nodes(
        CheapBftReplica, names, names, f, cluster.usig_authority, active
    )
    client = cluster.add_node(
        CheapBftClient, "c0", names,
        ["op-%d" % i for i in range(operations)], f,
    )
    if crash_active_at is not None:
        cluster.sim.schedule(crash_active_at, replicas[f].crash)
    cluster.start_all()
    cluster.run_until(lambda: client.done, until=horizon)
    return CheapBftResult(
        replicas=replicas,
        clients=[client],
        messages=cluster.metrics.messages_total,
        duration=cluster.now,
    )
