"""Ben-Or's randomized consensus (PODC 1983) — circumventing FLP.

The FLP theorem: no *deterministic* 1-crash-robust consensus exists in
an asynchronous system.  The tutorial's first circumvention is to
**sacrifice determinism**: Ben-Or's algorithm tosses coins, and
terminates with probability 1 (expected exponential rounds in general,
constant when a value has a head start).

Binary consensus, crash model, n > 2f.  Each round has two phases:

* **report** — broadcast your current estimate; collect n−f reports.
  If a strict majority of *all* n reports the same v, propose v; else
  propose ⊥.
* **propose** — collect n−f proposals.  If f+1 proposals carry the same
  v ≠ ⊥, **decide** v.  If at least one carries v ≠ ⊥, adopt v.
  Otherwise flip a coin.

Safety holds deterministically (two different values can never both
reach a majority of reports); only termination is probabilistic — the
property E14 measures as a rounds-to-decide distribution.
"""

from dataclasses import dataclass

from ..core.exceptions import ConfigurationError
from ..core.node import Node
from ..core.registry import register_profile
from ..core.taxonomy import (
    Awareness,
    FailureModel,
    ProtocolProfile,
    Strategy,
    Synchrony,
)
from ..net.message import Message

PROFILE = register_profile(
    ProtocolProfile(
        name="ben-or",
        synchrony=Synchrony.ASYNCHRONOUS,
        failure_model=FailureModel.CRASH,
        strategy=Strategy.PESSIMISTIC,
        awareness=Awareness.KNOWN,
        nodes_label="2f+1",
        phases=2,
        complexity="O(N^2)",
        notes="randomized; terminates with probability 1 (FLP circumvention)",
    )
)

UNDECIDED = "?"


@dataclass(frozen=True)
class Report(Message):
    round_id: int
    value: int


@dataclass(frozen=True)
class Proposal(Message):
    round_id: int
    value: object  # 0, 1, or UNDECIDED


@dataclass(frozen=True)
class DecisionMsg(Message):
    """Terminal gossip: a decided node announces its value so laggards
    stuck waiting on its round messages can finish immediately."""

    value: int


class BenOrNode(Node):
    """One participant in Ben-Or binary consensus."""

    def __init__(self, sim, network, name, peers, initial, f, max_rounds=200):
        super().__init__(sim, network, name)
        self.peers = list(peers)
        self.n = len(self.peers)
        if self.n <= 2 * f:
            raise ConfigurationError(
                "Ben-Or needs n > 2f (n=%d, f=%d)" % (self.n, f)
            )
        self.f = f
        self.estimate = initial
        self.round = 1
        self.decided = None
        self.decided_round = None
        self.max_rounds = max_rounds
        self._reports = {}  # round -> {name: value}
        self._proposals = {}  # round -> {name: value}
        self._phase = "report"

    def on_start(self):
        self._broadcast_report()

    # -- phase 1: report -------------------------------------------------------

    def _broadcast_report(self):
        self._phase = "report"
        message = Report(self.round, self.estimate)
        self._record_report(self.round, self.estimate, self.name)
        for peer in self.peers:
            if peer != self.name:
                self.send(peer, message)

    def handle_report(self, msg, src):
        self._record_report(msg.round_id, msg.value, src)

    def _record_report(self, round_id, value, sender):
        self._reports.setdefault(round_id, {})[sender] = value
        self._maybe_advance()

    # -- phase 2: propose -------------------------------------------------------

    def _broadcast_proposal(self, value):
        self._phase = "propose"
        message = Proposal(self.round, value)
        self._record_proposal(self.round, value, self.name)
        for peer in self.peers:
            if peer != self.name:
                self.send(peer, message)

    def handle_proposal(self, msg, src):
        self._record_proposal(msg.round_id, msg.value, src)

    def _record_proposal(self, round_id, value, sender):
        self._proposals.setdefault(round_id, {})[sender] = value
        self._maybe_advance()

    # -- round engine --------------------------------------------------------------

    def _maybe_advance(self):
        if self.decided is not None or self.round > self.max_rounds:
            return
        threshold = self.n - self.f
        if self._phase == "report":
            reports = self._reports.get(self.round, {})
            if len(reports) < threshold:
                return
            counts = {}
            for value in reports.values():
                counts[value] = counts.get(value, 0) + 1
            majority = [v for v, c in counts.items() if 2 * c > self.n]
            self._broadcast_proposal(majority[0] if majority else UNDECIDED)
        else:
            proposals = self._proposals.get(self.round, {})
            if len(proposals) < threshold:
                return
            concrete = {}
            for value in proposals.values():
                if value != UNDECIDED:
                    concrete[value] = concrete.get(value, 0) + 1
            decided_values = [v for v, c in concrete.items() if c >= self.f + 1]
            if decided_values:
                self.decided = decided_values[0]
                self.decided_round = self.round
                self.estimate = self.decided
                self.trace_local("decide", round=self.round,
                                 value=self.decided)
                # Terminal gossip so laggards decide too.
                for peer in self.peers:
                    if peer != self.name:
                        self.send(peer, DecisionMsg(self.decided))
                return
            if concrete:
                self.estimate = next(iter(concrete))
            else:
                self.estimate = self.sim.rng.choice((0, 1))
            self._advance_round()

    def _advance_round(self):
        self.round += 1
        if self.round <= self.max_rounds:
            self._broadcast_report()

    def handle_decisionmsg(self, msg, src):
        if self.decided is None:
            self.decided = msg.value
            self.decided_round = self.round
            self.estimate = msg.value
            self.trace_local("learn", round=self.round, value=msg.value)
            for peer in self.peers:
                if peer != self.name:
                    self.send(peer, DecisionMsg(msg.value))


@dataclass
class BenOrResult:
    nodes: list
    messages: int
    duration: float

    def decided_values(self):
        return [n.decided for n in self.nodes if not n.crashed]

    def agreement(self):
        values = {v for v in self.decided_values() if v is not None}
        return len(values) <= 1

    def all_decided(self):
        return all(v is not None for v in self.decided_values())

    def max_round(self):
        rounds = [n.decided_round for n in self.nodes
                  if n.decided_round is not None]
        return max(rounds) if rounds else None


def run_benor(cluster, n=5, f=1, initial_values=None, crash_indices=(),
              horizon=10000.0, max_rounds=200):
    """Run Ben-Or consensus; default initial values are a near-even split
    (the hard case that actually needs the coin flips)."""
    names = ["p%d" % i for i in range(n)]
    if initial_values is None:
        initial_values = [i % 2 for i in range(n)]
    nodes = [
        cluster.add_node(BenOrNode, name, names, initial_values[i], f,
                         max_rounds=max_rounds)
        for i, name in enumerate(names)
    ]
    for index in crash_indices:
        nodes[index].crash()
    cluster.start_all()
    cluster.run_until(
        lambda: all(node.decided is not None
                    for node in nodes if not node.crashed),
        until=horizon,
    )
    return BenOrResult(
        nodes=nodes,
        messages=cluster.metrics.messages_total,
        duration=cluster.now,
    )
