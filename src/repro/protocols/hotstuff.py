"""HotStuff (Yin et al., PODC 2019) — basic and chained/pipelined.

The tutorial's property box: 3f+1 nodes, **7 phases**, **O(N) linear**
communication.  The linearity trick: each n-to-n phase of PBFT becomes
an n-to-1 vote collection plus a 1-to-n broadcast, with the leader
compressing 2f+1 votes into a constant-size **(k, n)-threshold
signature** — a quorum certificate (QC) anyone can verify.

:class:`BasicHotStuff` is the slides' sequence diagram: request →
prepare → (votes) → pre-commit → (votes) → commit → (votes) → decide —
seven one-way message exchanges, with view change folded into normal
operation.

:class:`ChainedHotStuffReplica` is the pipelined production form: one
*generic* phase per view, a rotating leader, and the three-chain commit
rule — a block is decided when it heads a chain of three blocks with
consecutive views, each certified by a QC.  At steady state the pipeline
decides one block per view, which is the throughput claim E11 measures.
"""

from dataclasses import dataclass
from functools import cached_property

from ..core.exceptions import ConfigurationError
from ..core.node import Node
from ..core.registry import register_profile
from ..core.taxonomy import (
    Awareness,
    FailureModel,
    ProtocolProfile,
    Strategy,
    Synchrony,
)
from ..crypto.hashing import sha256_hex
from ..crypto.threshold import ThresholdScheme
from ..net.message import Message

PROFILE = register_profile(
    ProtocolProfile(
        name="hotstuff",
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        failure_model=FailureModel.BYZANTINE,
        strategy=Strategy.PESSIMISTIC,
        awareness=Awareness.KNOWN,
        nodes_label="3f+1",
        phases=7,
        complexity="O(N)",
        notes="threshold-signature QCs; leader rotation; pipelining",
    )
)


# -- basic (sequential) HotStuff ----------------------------------------------

BASIC_PHASES = ("prepare", "pre-commit", "commit", "decide")


@dataclass(frozen=True)
class HsRequest(Message):
    operation: object
    client: str


@dataclass(frozen=True)
class HsPhaseMsg(Message):
    """Leader broadcast for one phase, carrying the previous phase's QC."""

    view: int
    phase: str
    node_hash: str
    operation: object
    justify: object  # ThresholdSignature or None


@dataclass(frozen=True)
class HsVote(Message):
    view: int
    phase: str
    node_hash: str
    partial: object  # PartialSignature


@dataclass(frozen=True)
class HsReply(Message):
    operation: object
    result: object


class BasicHotStuffReplica(Node):
    """One replica of basic (non-pipelined) HotStuff.

    All replicas share a :class:`~repro.crypto.ThresholdScheme` with
    k = 2f+1; the leader of the view drives the four QC phases.
    """

    def __init__(self, sim, network, name, peers, f, scheme,
                 state_machine_factory=None):
        super().__init__(sim, network, name)
        self.peers = list(peers)
        self.n = len(self.peers)
        if self.n < 3 * f + 1:
            raise ConfigurationError(
                "HotStuff needs n >= 3f+1 (n=%d, f=%d)" % (self.n, f)
            )
        self.f = f
        self.quorum = 2 * f + 1
        self.scheme = scheme
        self.view = 0
        self.decided_ops = []
        if state_machine_factory is None:
            from .multipaxos import ListStateMachine
            state_machine_factory = ListStateMachine
        self.state_machine = state_machine_factory()

        # Leader state
        self._queue = []  # pending client requests
        self._current = None  # (node_hash, operation, client)
        self._phase_index = 0
        self._votes = {}  # (phase, node_hash) -> [partials]
        self._busy = False

    @property
    def leader_name(self):
        return self.peers[self.view % self.n]

    @property
    def is_leader(self):
        return self.leader_name == self.name

    # -- client requests ------------------------------------------------------

    def handle_hsrequest(self, msg, src):
        if not self.is_leader:
            self.send(self.leader_name, msg)
            return
        self._queue.append(msg)
        self._maybe_start()

    def _maybe_start(self):
        if self._busy or not self._queue:
            return
        request = self._queue.pop(0)
        node_hash = sha256_hex(self.view, request.operation, request.client)
        self._current = (node_hash, request.operation, request.client)
        self._busy = True
        self._phase_index = 0
        self._broadcast_phase(justify=None)

    def _broadcast_phase(self, justify):
        phase = BASIC_PHASES[self._phase_index]
        node_hash, operation, _client = self._current
        if self.network.metrics is not None:
            self.network.metrics.mark_phase("hotstuff", phase, self.sim.now)
        message = HsPhaseMsg(self.view, phase, node_hash, operation, justify)
        self.multicast([peer for peer in self.peers if peer != self.name],
                       message)
        self._on_phase_msg(message)  # leader processes its own broadcast

    # -- replica side -----------------------------------------------------------

    def handle_hsphasemsg(self, msg, src):
        if src != self.leader_name:
            return
        self._on_phase_msg(msg)

    def _on_phase_msg(self, msg):
        # Verify the QC chaining: every phase after prepare must carry a
        # valid QC over the previous phase for the same node.
        phase_index = BASIC_PHASES.index(msg.phase)
        if phase_index > 0:
            previous = BASIC_PHASES[phase_index - 1]
            if msg.justify is None or not self.scheme.verify(
                msg.justify, msg.view, previous, msg.node_hash
            ):
                return
        if msg.phase == "decide":
            self._execute(msg)
            return
        partial = self.scheme.sign_share(
            self.name, msg.view, msg.phase, msg.node_hash
        )
        vote = HsVote(msg.view, msg.phase, msg.node_hash, partial)
        if self.is_leader:
            self.handle_hsvote(vote, self.name)
        else:
            self.send(self.leader_name, vote)

    def handle_hsvote(self, msg, src):
        if not self.is_leader or self._current is None:
            return
        if msg.node_hash != self._current[0]:
            return
        key = (msg.phase, msg.node_hash)
        partials = self._votes.setdefault(key, [])
        partials.append(msg.partial)
        if len(partials) < self.quorum:
            return
        if msg.phase != BASIC_PHASES[self._phase_index]:
            return  # stale extra votes
        qc = self.scheme.combine(partials, msg.view, msg.phase, msg.node_hash)
        self._phase_index += 1
        self._broadcast_phase(justify=qc)

    def _execute(self, msg):
        result = self.state_machine.apply(msg.operation)
        self.decided_ops.append(msg.operation)
        self.trace_local("decide", view=self.view, op=msg.operation)
        if self.is_leader:
            _node_hash, _operation, client = self._current
            self.send(client, HsReply(msg.operation, result))
            self._current = None
            self._busy = False
            self._votes = {}
            self.view += 1  # leader rotation after a single commit attempt
            self._rotate_queue()
        else:
            self.view += 1

    def _rotate_queue(self):
        # After rotation the queue must follow the new leader.
        if self._queue:
            new_leader = self.leader_name
            if new_leader != self.name:
                for request in self._queue:
                    self.send(new_leader, request)
                self._queue = []
            else:
                self.sim.call_soon(self._maybe_start)


class BasicHotStuffClient(Node):
    """Sends operations one at a time to the current leader (replica 0
    initially; replicas forward after rotation)."""

    def __init__(self, sim, network, name, replicas, operations):
        super().__init__(sim, network, name)
        self.replicas = list(replicas)
        self.operations = list(operations)
        self.results = []
        self.latencies = []
        self._next = 0
        self._sent_at = None

    def on_start(self):
        self._send_next()

    def _send_next(self):
        if self.done:
            return
        self._sent_at = self.sim.now
        self.send(self.replicas[self._next % len(self.replicas)],
                  HsRequest(self.operations[self._next], self.name))

    def handle_hsreply(self, msg, src):
        if self.done or msg.operation != self.operations[self._next]:
            return
        self.results.append(msg.result)
        self.latencies.append(self.sim.now - self._sent_at)
        self._next += 1
        self._send_next()

    @property
    def done(self):
        return self._next >= len(self.operations)


# -- chained / pipelined HotStuff ---------------------------------------------


@dataclass(frozen=True)
class Block:
    """A chained-HotStuff block: parent pointer + command + justify QC."""

    view: int
    parent: str  # parent block hash
    command: object
    justify_view: int
    justify: object  # ThresholdSignature over (justify_view, parent)

    @cached_property
    def hash(self):
        # Blocks are immutable, and chain walks (_extends, _commit_chain,
        # _next_command) touch .hash thousands of times per run — cache
        # the digest per instance.  cached_property writes straight into
        # __dict__, which frozen dataclasses allow.
        return sha256_hex(self.view, self.parent, self.command,
                          self.justify_view)


GENESIS = Block(0, "", "genesis", -1, None)


@dataclass(frozen=True)
class Proposal(Message):
    block: Block


@dataclass(frozen=True)
class GenericVote(Message):
    view: int
    block_hash: str
    partial: object


class ChainedHotStuffReplica(Node):
    """Chained HotStuff with round-robin leader rotation.

    One generic phase per view: the leader proposes a block justified by
    the highest QC it knows; replicas vote to the *next* leader; the
    next leader's QC doubles as the next proposal's justification.
    Commit rule: a block decides when it starts a three-chain of
    consecutive views (b ← b' ← b'' with QCs all the way).
    """

    def __init__(self, sim, network, name, peers, f, scheme, commands,
                 view_timeout=15.0):
        super().__init__(sim, network, name)
        self.peers = list(peers)
        self.n = len(self.peers)
        if self.n < 3 * f + 1:
            raise ConfigurationError(
                "HotStuff needs n >= 3f+1 (n=%d, f=%d)" % (self.n, f)
            )
        self.f = f
        self.quorum = 2 * f + 1
        self.scheme = scheme
        self.commands = list(commands)  # shared command queue (replicated)
        self.view = 1
        self.blocks = {GENESIS.hash: GENESIS}
        self.high_qc = (0, GENESIS.hash, None)  # (view, block_hash, qc)
        self.locked = (0, GENESIS.hash)
        self.decided = []  # commands in decided order
        self._votes = {}  # (view, block_hash) -> [partials]
        self._proposed_views = set()
        self._last_voted = None  # (view, block_hash) of our latest vote
        self.view_timeout = view_timeout
        self._timeout_timer = None

    def leader_of(self, view):
        return self.peers[view % self.n]

    def on_start(self):
        if self.leader_of(self.view) == self.name:
            self.sim.call_soon(self._propose)
        self._arm_timeout()

    def _arm_timeout(self):
        if self._timeout_timer is not None:
            self._timeout_timer.cancel()
        self._timeout_timer = self.set_timer(self.view_timeout, self._on_timeout)

    def _on_timeout(self):
        # Pacemaker fallback: advance the view and, if leader, propose on
        # the highest known QC (handles a crashed leader).
        self.view += 1
        # Vote recovery: if our latest vote's QC never materialised (its
        # collector may be the crashed replica), re-route the vote to the
        # new view's leader so the chain doesn't lose the block.
        if self._last_voted is not None and self._last_voted[0] > self.high_qc[0]:
            voted_view, voted_hash = self._last_voted
            partial = self.scheme.sign_share(self.name, voted_view, voted_hash)
            vote = GenericVote(voted_view, voted_hash, partial)
            new_leader = self.leader_of(self.view)
            if new_leader == self.name:
                self.handle_genericvote(vote, self.name)
            else:
                self.send(new_leader, vote)
        if self.leader_of(self.view) == self.name:
            self._propose()
        self._arm_timeout()

    def _next_command(self):
        """First queued command not already on the chain we extend."""
        on_chain = set()
        current = self.blocks.get(self.high_qc[1])
        while current is not None and current.hash != GENESIS.hash:
            on_chain.add(current.command)
            current = self.blocks.get(current.parent)
        for command in self.commands:
            if command not in on_chain:
                return command
        return "noop-%d" % len(on_chain)

    def _propose(self):
        if self.view in self._proposed_views or self.crashed:
            return
        self._proposed_views.add(self.view)
        qc_view, qc_hash, qc = self.high_qc
        block = Block(self.view, qc_hash, self._next_command(), qc_view, qc)
        metrics = self.network.metrics
        if metrics is not None:
            metrics.mark_phase("hotstuff-chained", "propose", self.sim.now)
            label = "hotstuff:%s" % (block.command,)
            if block.command in self.commands and not metrics.request_open(label):
                # Span opens when a command first enters a proposed block;
                # a re-proposal after a failed view keeps the original.
                metrics.start_request(label, self.sim.now)
        proposal = Proposal(block)
        self.multicast([peer for peer in self.peers if peer != self.name],
                       proposal)
        self.handle_proposal(proposal, self.name)

    def handle_proposal(self, msg, src):
        block = msg.block
        if src != self.leader_of(block.view):
            return
        if block.view < self.view:
            return
        # Verify the justify QC.
        if block.justify_view > 0:
            if block.justify is None or not self.scheme.verify(
                block.justify, block.justify_view, block.parent
            ):
                return
        self.blocks[block.hash] = block
        self._update_high_qc(block.justify_view, block.parent, block.justify)
        # Safety rule: vote only if the block extends the locked block or
        # carries a QC newer than the lock.
        if not (self._extends(block, self.locked[1])
                or block.justify_view > self.locked[0]):
            return
        self.view = max(self.view, block.view)
        self._arm_timeout()
        self._try_commit(block)
        partial = self.scheme.sign_share(self.name, block.view, block.hash)
        vote = GenericVote(block.view, block.hash, partial)
        self._last_voted = (block.view, block.hash)
        next_leader = self.leader_of(block.view + 1)
        if next_leader == self.name:
            self.handle_genericvote(vote, self.name)
        else:
            self.send(next_leader, vote)

    def _extends(self, block, ancestor_hash):
        current = block
        for _ in range(len(self.blocks) + 1):
            if current.hash == ancestor_hash or current.parent == ancestor_hash:
                return True
            parent = self.blocks.get(current.parent)
            if parent is None:
                return False
            current = parent
        return False

    def handle_genericvote(self, msg, src):
        key = (msg.view, msg.block_hash)
        partials = self._votes.setdefault(key, [])
        partials.append(msg.partial)
        if len(partials) != self.quorum:
            return
        qc = self.scheme.combine(partials, msg.view, msg.block_hash)
        self._update_high_qc(msg.view, msg.block_hash, qc)
        self.view = max(self.view, msg.view + 1)
        self._arm_timeout()
        if self.leader_of(self.view) == self.name:
            self._propose()

    def _update_high_qc(self, view, block_hash, qc):
        if qc is not None and view > self.high_qc[0]:
            self.high_qc = (view, block_hash, qc)
            # Two-chain lock: lock the parent of the newly certified block.
            block = self.blocks.get(block_hash)
            if block is not None:
                parent = self.blocks.get(block.parent)
                if parent is not None and parent.view > self.locked[0]:
                    self.locked = (parent.view, parent.hash)

    def _try_commit(self, block):
        """Three-chain commit: b'' ← b' ← b with consecutive views."""
        b1 = self.blocks.get(block.parent)  # certified by block.justify
        if b1 is None or block.justify_view != b1.view:
            return
        b2 = self.blocks.get(b1.parent)
        if b2 is None or b1.justify_view != b2.view:
            return
        b3 = self.blocks.get(b2.parent)
        if b3 is None or b2.justify_view != b3.view:
            return
        if b1.view == b2.view + 1 and b2.view == b3.view + 1:
            self._commit_chain(b3)

    def _commit_chain(self, block):
        chain = []
        current = block
        while current is not None and current.command not in self.decided \
                and current.hash != GENESIS.hash:
            chain.append(current)
            current = self.blocks.get(current.parent)
        for blk in reversed(chain):
            if blk.command != "genesis":
                self.decided.append(blk.command)
                metrics = self.network.metrics
                label = "hotstuff:%s" % (blk.command,)
                if metrics is not None and metrics.request_open(label):
                    # First replica to three-chain-commit closes the span.
                    metrics.finish_request(label, self.sim.now)
                self.trace_local("decide", view=blk.view,
                                 command=blk.command,
                                 index=len(self.decided) - 1)


# -- drivers -----------------------------------------------------------------


@dataclass
class HotStuffResult:
    replicas: list
    clients: list
    messages: int
    duration: float

    def decided_logs(self):
        return [r.decided_ops if hasattr(r, "decided_ops") else r.decided
                for r in self.replicas]

    def logs_consistent(self):
        logs = self.decided_logs()
        # Prefix consistency: any two logs agree on their common prefix.
        for log_a in logs:
            for log_b in logs:
                for x, y in zip(log_a, log_b):
                    if x != y:
                        return False
        return True


def run_basic_hotstuff(cluster, f=1, operations=3, horizon=2000.0):
    """Drive basic HotStuff through ``operations`` sequential commands."""
    n = 3 * f + 1
    names = ["r%d" % i for i in range(n)]
    scheme = ThresholdScheme(2 * f + 1, names)
    replicas = cluster.add_nodes(BasicHotStuffReplica, names, names, f, scheme)
    client = cluster.add_node(
        BasicHotStuffClient, "c0", names,
        ["op-%d" % i for i in range(operations)],
    )
    cluster.start_all()
    cluster.run_until(lambda: client.done, until=horizon)
    return HotStuffResult(
        replicas=replicas,
        clients=[client],
        messages=cluster.metrics.messages_total,
        duration=cluster.now,
    )


def run_chained_hotstuff(cluster, f=1, commands=8, crash_leader_at=None,
                         horizon=3000.0):
    """Drive chained HotStuff until every command is decided everywhere
    alive."""
    n = 3 * f + 1
    names = ["r%d" % i for i in range(n)]
    scheme = ThresholdScheme(2 * f + 1, names)
    command_list = ["cmd-%d" % i for i in range(commands)]
    replicas = cluster.add_nodes(
        ChainedHotStuffReplica, names, names, f, scheme, command_list
    )
    if crash_leader_at is not None:
        def crash_leader():
            for replica in replicas:
                if replica.leader_of(replica.view) == replica.name:
                    replica.crash()
                    return
            replicas[1].crash()
        cluster.sim.schedule(crash_leader_at, crash_leader)

    def all_decided():
        return all(
            set(command_list) <= set(r.decided)
            for r in replicas
            if not r.crashed
        )

    cluster.start_all()
    cluster.run_until(all_decided, until=horizon)
    return HotStuffResult(
        replicas=replicas,
        clients=[],
        messages=cluster.metrics.messages_total,
        duration=cluster.now,
    )
