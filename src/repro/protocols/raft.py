"""Raft (Ongaro & Ousterhout, USENIX ATC 2014).

The tutorial positions Raft as "equivalent to Paxos in fault-tolerance,
meant to be more understandable", leader-based, "integrating consensus
with log management".  This is a full implementation of the core
algorithm: terms, randomized election timeouts, RequestVote with the
up-to-date-log restriction, AppendEntries with log-matching repair, and
the commit rule (a leader only commits entries from its own term by
counting replicas, which commits all preceding entries transitively).
"""

import enum
from dataclasses import dataclass

from ..core.node import Node
from ..core.registry import register_profile
from ..core.taxonomy import (
    Awareness,
    FailureModel,
    ProtocolProfile,
    Strategy,
    Synchrony,
)
from ..net.message import Message

PROFILE = register_profile(
    ProtocolProfile(
        name="raft",
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        failure_model=FailureModel.CRASH,
        strategy=Strategy.PESSIMISTIC,
        awareness=Awareness.KNOWN,
        nodes_label="2f+1",
        phases=2,
        complexity="O(N)",
        notes="strong leader; log divergence repaired by AppendEntries",
    )
)


class Role(enum.Enum):
    """A Raft server's current role."""

    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


#: The no-op command every new leader appends in its own term.  Raft's
#: commit rule only counts replicas for current-term entries, so without
#: this a leader that inherits uncommitted entries from dead terms could
#: never commit them until a client happened to send something new.
NOOP = "__raft_noop__"


@dataclass(frozen=True)
class LogEntry:
    term: int
    command: object
    #: Client request id, carried in the log so *any* future leader can
    #: deduplicate retries of an already-appended command.
    request_id: str = None


# -- messages ---------------------------------------------------------------


@dataclass(frozen=True)
class RequestVote(Message):
    term: int
    last_log_index: int
    last_log_term: int


@dataclass(frozen=True)
class VoteReply(Message):
    term: int
    granted: bool


@dataclass(frozen=True)
class AppendEntries(Message):
    term: int
    prev_log_index: int
    prev_log_term: int
    entries: tuple
    leader_commit: int


@dataclass(frozen=True)
class AppendReply(Message):
    term: int
    success: bool
    match_index: int


@dataclass(frozen=True)
class InstallSnapshot(Message):
    """Leader → lagging follower: replace your prefix with my snapshot.

    Sent when the follower's ``next_index`` precedes the leader's
    compacted log base — the entries it needs no longer exist as log
    entries, only as state."""

    term: int
    last_included_index: int
    last_included_term: int
    state: object  # the state machine snapshot
    ops_applied: int
    applied_requests: tuple  # ((request_id, result), ...) for dedup


@dataclass(frozen=True)
class RaftClientRequest(Message):
    command: object
    request_id: str


@dataclass(frozen=True)
class RaftClientReply(Message):
    request_id: str
    result: object


@dataclass(frozen=True)
class RaftRedirect(Message):
    request_id: str
    leader_hint: str


class RaftNode(Node):
    """One Raft server.

    Parameters
    ----------
    peers:
        All server names including this one.
    election_timeout:
        Base timeout; each arm adds uniform jitter in [0, timeout] —
        Raft's own livelock-avoidance mechanism (the same randomization
        idea the tutorial presents for Paxos proposers).
    """

    HEARTBEAT_INTERVAL = 1.0

    def __init__(self, sim, network, name, peers,
                 state_machine_factory=None, election_timeout=6.0,
                 snapshot_threshold=None):
        super().__init__(sim, network, name)
        self.peers = list(peers)
        self.majority = len(self.peers) // 2 + 1
        self.election_timeout = election_timeout
        if state_machine_factory is None:
            from .multipaxos import ListStateMachine
            state_machine_factory = ListStateMachine
        self.state_machine = state_machine_factory()

        # Persistent state
        self.current_term = 0
        self.voted_for = None
        self.log = []  # list[LogEntry]; self.log[0] has index log_base
        # Log compaction: entries below log_base live only in the snapshot.
        self.log_base = 0
        self.snapshot = None
        self.snapshot_term = 0
        self.snapshot_threshold = snapshot_threshold
        self.snapshots_taken = 0
        self.snapshots_installed = 0

        # Volatile state
        self.role = Role.FOLLOWER
        self.commit_index = -1
        self.last_applied = -1
        self.leader_hint = None
        self.elections_started = 0

        # Leader state
        self.next_index = {}
        self.match_index = {}
        self._votes = set()
        self._client_of = {}  # log index -> (client, request_id)
        self._election_timer = None
        self._heartbeat_timer = None
        self.apply_results = {}
        self._applied_requests = {}  # request_id -> result (dedup cache)

    # -- helpers -----------------------------------------------------------

    def last_log_index(self):
        return self.log_base + len(self.log) - 1

    def last_log_term(self):
        return self.log[-1].term if self.log else self.snapshot_term

    def _entry(self, index):
        """The entry at absolute ``index`` (must be >= log_base)."""
        return self.log[index - self.log_base]

    def _term_at(self, index):
        if index < 0:
            return 0
        if index == self.log_base - 1:
            return self.snapshot_term
        if index < self.log_base:
            return None  # compacted away
        if index > self.last_log_index():
            return None
        return self._entry(index).term

    # -- lifecycle ----------------------------------------------------------

    def on_start(self):
        self._arm_election_timer()

    def on_crash(self):
        self.role = Role.FOLLOWER

    def on_restart(self):
        # current_term, voted_for and the log are persistent in Raft.
        self.role = Role.FOLLOWER
        self.leader_hint = None
        self._arm_election_timer()

    def _arm_election_timer(self):
        if self._election_timer is not None:
            self._election_timer.cancel()
        timeout = self.election_timeout + self.rng.uniform(
            0.0, self.election_timeout
        )
        self._election_timer = self.set_timer(timeout, self._start_election)

    def _step_down(self, term, leader_hint=None):
        if term > self.current_term:
            self.current_term = term
            self.voted_for = None
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
            self._heartbeat_timer = None
        self.role = Role.FOLLOWER
        if leader_hint is not None:
            self.leader_hint = leader_hint
        self._arm_election_timer()

    # -- elections ----------------------------------------------------------

    def _start_election(self):
        if self.crashed:
            return
        self.role = Role.CANDIDATE
        self.current_term += 1
        self.voted_for = self.name
        self._votes = {self.name}
        self.elections_started += 1
        if self.network.metrics is not None:
            self.network.metrics.mark_phase("raft", "election", self.sim.now)
        for peer in self.peers:
            if peer != self.name:
                self.send(
                    peer,
                    RequestVote(
                        self.current_term,
                        self.last_log_index(),
                        self.last_log_term(),
                    ),
                )
        self._arm_election_timer()

    def handle_requestvote(self, msg, src):
        if msg.term > self.current_term:
            self._step_down(msg.term)
        granted = False
        if msg.term == self.current_term and self.voted_for in (None, src):
            # Election restriction: grant only to candidates whose log is
            # at least as up-to-date as ours.
            up_to_date = (msg.last_log_term, msg.last_log_index) >= (
                self.last_log_term(),
                self.last_log_index(),
            )
            if up_to_date:
                granted = True
                self.voted_for = src
                self._arm_election_timer()
        self.send(src, VoteReply(self.current_term, granted))

    def handle_votereply(self, msg, src):
        if msg.term > self.current_term:
            self._step_down(msg.term)
            return
        if self.role is not Role.CANDIDATE or msg.term != self.current_term:
            return
        if msg.granted:
            self._votes.add(src)
            if len(self._votes) >= self.majority:
                self._become_leader()

    def _become_leader(self):
        self.role = Role.LEADER
        self.leader_hint = self.name
        self.trace_local("lead", term=self.current_term)
        if self._election_timer is not None:
            self._election_timer.cancel()
        # Commit-point no-op: anchors inherited entries under our term.
        self.log.append(LogEntry(self.current_term, NOOP))
        self.next_index = {p: self.last_log_index() + 1 for p in self.peers}
        self.match_index = {p: -1 for p in self.peers}
        self.match_index[self.name] = self.last_log_index()
        self._broadcast_append()
        self._heartbeat_timer = self.set_periodic_timer(
            self.HEARTBEAT_INTERVAL, self._broadcast_append
        )

    # -- log replication ------------------------------------------------------

    def handle_raftclientrequest(self, msg, src):
        if self.role is not Role.LEADER:
            self.send(src, RaftRedirect(msg.request_id, self.leader_hint or ""))
            return
        if msg.request_id in self._applied_requests:
            # Retry of a completed command: re-reply, never re-execute.
            self.send(src, RaftClientReply(msg.request_id,
                                           self._applied_requests[msg.request_id]))
            return
        if any(entry.request_id == msg.request_id for entry in self.log):
            # Already appended, still committing: remember who to answer.
            for position, entry in enumerate(self.log):
                if entry.request_id == msg.request_id:
                    self._client_of[self.log_base + position] = \
                        (src, msg.request_id)
            return
        index = self.last_log_index() + 1
        self.log.append(LogEntry(self.current_term, msg.command,
                                 msg.request_id))
        self.match_index[self.name] = index
        self._client_of[index] = (src, msg.request_id)
        self.trace_local("propose", index=index, req=msg.request_id)
        if self.network.metrics is not None:
            self.network.metrics.mark_phase("raft", "append", self.sim.now)
        self._broadcast_append()

    def _broadcast_append(self):
        if self.role is not Role.LEADER:
            return
        for peer in self.peers:
            if peer != self.name:
                self._send_append(peer)

    def _send_append(self, peer):
        nxt = self.next_index.get(peer, self.last_log_index() + 1)
        if nxt < self.log_base:
            # The entries this follower needs were compacted: ship state.
            self.send(peer, InstallSnapshot(
                self.current_term,
                self.log_base - 1,
                self.snapshot_term,
                self.snapshot,
                getattr(self.state_machine, "ops_applied", 0),
                tuple(self._applied_requests.items()),
            ))
            return
        prev_index = nxt - 1
        prev_term = self._term_at(prev_index) or 0
        entries = tuple(self.log[nxt - self.log_base:])
        self.send(
            peer,
            AppendEntries(
                self.current_term, prev_index, prev_term, entries,
                self.commit_index,
            ),
        )

    def handle_appendentries(self, msg, src):
        if msg.term > self.current_term:
            self._step_down(msg.term, leader_hint=src)
        if msg.term < self.current_term:
            self.send(src, AppendReply(self.current_term, False, -1))
            return
        # Valid leader for our term.
        self.leader_hint = src
        if self.role is not Role.FOLLOWER:
            self._step_down(msg.term, leader_hint=src)
        self._arm_election_timer()
        # Log-matching check (a prefix inside our snapshot matches by
        # construction — it was committed before being compacted).
        if msg.prev_log_index >= self.log_base - 1 and msg.prev_log_index >= 0:
            local_term = self._term_at(msg.prev_log_index)
            if local_term is None or local_term != msg.prev_log_term:
                self.send(src, AppendReply(self.current_term, False, -1))
                return
        # Append, truncating any conflicting suffix.
        insert_at = msg.prev_log_index + 1
        for offset, entry in enumerate(msg.entries):
            index = insert_at + offset
            if index < self.log_base:
                continue  # covered by our snapshot: already committed
            position = index - self.log_base
            if position < len(self.log):
                if self.log[position].term != entry.term:
                    del self.log[position:]
                    self.log.append(entry)
            else:
                self.log.append(entry)
        match = msg.prev_log_index + len(msg.entries)
        if msg.leader_commit > self.commit_index:
            self.commit_index = min(msg.leader_commit, self.last_log_index())
            self.trace_local("commit", index=self.commit_index,
                             term=self.current_term)
            self._apply_ready()
        self.send(src, AppendReply(self.current_term, True, match))

    def handle_appendreply(self, msg, src):
        if msg.term > self.current_term:
            self._step_down(msg.term)
            return
        if self.role is not Role.LEADER or msg.term != self.current_term:
            return
        if msg.success:
            self.match_index[src] = max(self.match_index.get(src, -1), msg.match_index)
            self.next_index[src] = self.match_index[src] + 1
            self._advance_commit()
        else:
            # Back up and retry — Raft's log repair.
            self.next_index[src] = max(0, self.next_index.get(src, 1) - 1)
            self._send_append(src)

    def _advance_commit(self):
        """Commit the highest index replicated on a majority whose entry
        is from the current term."""
        for index in range(self.last_log_index(), self.commit_index, -1):
            if self._term_at(index) != self.current_term:
                break
            count = sum(1 for m in self.match_index.values() if m >= index)
            if count >= self.majority:
                self.commit_index = index
                entry = self._entry(index)
                if entry.request_id is not None:
                    self.trace_local("commit", index=index,
                                     term=self.current_term,
                                     req=entry.request_id)
                else:
                    self.trace_local("commit", index=index,
                                     term=self.current_term)
                self._apply_ready()
                break

    def _apply_ready(self):
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            entry = self._entry(self.last_applied)
            if entry.command == NOOP:
                self.apply_results[self.last_applied] = None
                continue
            result = self.state_machine.apply(entry.command)
            if entry.request_id is not None:
                self.trace_local("apply", index=self.last_applied,
                                 op=entry.command, req=entry.request_id)
            else:
                self.trace_local("apply", index=self.last_applied,
                                 op=entry.command)
            self.apply_results[self.last_applied] = result
            if entry.request_id is not None:
                self._applied_requests[entry.request_id] = result
            client = self._client_of.pop(self.last_applied, None)
            if client is not None and self.role is Role.LEADER:
                dst, request_id = client
                self.send(dst, RaftClientReply(request_id, result))
        self._maybe_compact()

    # -- log compaction -----------------------------------------------------

    def _maybe_compact(self):
        """Snapshot the state machine and discard the applied prefix once
        it exceeds the configured threshold."""
        if self.snapshot_threshold is None:
            return
        applied_in_log = self.last_applied - self.log_base + 1
        if applied_in_log < self.snapshot_threshold:
            return
        if not hasattr(self.state_machine, "snapshot"):
            return
        self.snapshot = self.state_machine.snapshot()
        self.snapshot_term = self._term_at(self.last_applied)
        keep_from = self.last_applied - self.log_base + 1
        self.log = self.log[keep_from:]
        self.log_base = self.last_applied + 1
        self.snapshots_taken += 1

    def handle_installsnapshot(self, msg, src):
        if msg.term > self.current_term:
            self._step_down(msg.term, leader_hint=src)
        if msg.term < self.current_term:
            self.send(src, AppendReply(self.current_term, False, -1))
            return
        self.leader_hint = src
        self._arm_election_timer()
        if msg.last_included_index <= self.last_applied:
            # Stale snapshot: we're already past it.
            self.send(src, AppendReply(self.current_term, True,
                                       self.last_applied))
            return
        if hasattr(self.state_machine, "restore"):
            self.state_machine.restore(msg.state, msg.ops_applied)
        self.log = []
        self.log_base = msg.last_included_index + 1
        self.snapshot = msg.state
        self.snapshot_term = msg.last_included_term
        self.commit_index = msg.last_included_index
        self.last_applied = msg.last_included_index
        self._applied_requests.update(dict(msg.applied_requests))
        self.snapshots_installed += 1
        self.send(src, AppendReply(self.current_term, True,
                                   msg.last_included_index))

    # -- introspection -------------------------------------------------------

    def committed_log(self):
        """Committed (index, command) pairs still present in the log —
        a compacted prefix lives only in the snapshot; leader no-ops are
        omitted (they carry no client command)."""
        return [
            (index, self._entry(index).command)
            for index in range(self.log_base, self.commit_index + 1)
            if self._entry(index).command != NOOP
        ]


class RaftClient(Node):
    """Closed-loop Raft client following leader redirects."""

    def __init__(self, sim, network, name, servers, commands, retry_timeout=10.0):
        super().__init__(sim, network, name)
        self.servers = list(servers)
        self.commands = list(commands)
        self.retry_timeout = retry_timeout
        self.target = self.servers[0]
        self.results = []
        self._next = 0
        self._timer = None

    def on_start(self):
        self._send_next()

    def _send_next(self):
        if self.done:
            return
        request_id = "%s-%d" % (self.name, self._next)
        metrics = self.network.metrics
        if metrics is not None and not metrics.request_open("raft:" + request_id):
            # Span opens on first submission; redirects/retries keep it.
            metrics.start_request("raft:" + request_id, self.sim.now)
        self.send(self.target, RaftClientRequest(self.commands[self._next], request_id))
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.set_timer(self.retry_timeout, self._rotate_and_retry)

    def _rotate_and_retry(self):
        index = self.servers.index(self.target)
        self.target = self.servers[(index + 1) % len(self.servers)]
        self._send_next()

    def handle_raftredirect(self, msg, src):
        if msg.leader_hint and msg.leader_hint in self.servers:
            self.target = msg.leader_hint
            self._send_next()
        else:
            self._rotate_and_retry()

    def handle_raftclientreply(self, msg, src):
        expected = "%s-%d" % (self.name, self._next)
        if msg.request_id != expected:
            return
        metrics = self.network.metrics
        if metrics is not None and metrics.request_open("raft:" + expected):
            metrics.finish_request("raft:" + expected, self.sim.now)
        self.results.append(msg.result)
        self._next += 1
        if self._timer is not None:
            self._timer.cancel()
        self._send_next()

    @property
    def done(self):
        return self._next >= len(self.commands)


# -- driver -----------------------------------------------------------------


@dataclass
class RaftResult:
    nodes: list
    clients: list
    messages: int
    duration: float

    def leader(self):
        leaders = [n for n in self.nodes if n.role is Role.LEADER and not n.crashed]
        return leaders[-1] if leaders else None

    def committed_logs(self):
        return [n.committed_log() for n in self.nodes]

    def logs_consistent(self):
        merged = {}
        for log in self.committed_logs():
            for index, value in log:
                if index in merged and merged[index] != value:
                    return False
                merged[index] = value
        return True


def run_raft(
    cluster,
    n_nodes=3,
    n_clients=1,
    commands_per_client=5,
    crash_leader_at=None,
    horizon=3000.0,
    state_machine_factory=None,
    snapshot_threshold=None,
):
    """Drive a Raft cluster with closed-loop clients."""
    names = ["n%d" % i for i in range(n_nodes)]
    nodes = cluster.add_nodes(
        RaftNode, names, names, state_machine_factory=state_machine_factory,
        snapshot_threshold=snapshot_threshold,
    )
    clients = [
        cluster.add_node(
            RaftClient,
            "c%d" % i,
            names,
            ["cmd-%d-%d" % (i, j) for j in range(commands_per_client)],
        )
        for i in range(n_clients)
    ]
    if crash_leader_at is not None:
        def crash_current_leader():
            for node in nodes:
                if node.role is Role.LEADER and not node.crashed:
                    node.crash()
                    return
        cluster.sim.schedule(crash_leader_at, crash_current_leader)
    cluster.start_all()
    cluster.run_until(lambda: all(c.done for c in clients), until=horizon)
    return RaftResult(
        nodes=nodes,
        clients=clients,
        messages=cluster.metrics.messages_total,
        duration=cluster.now,
    )
