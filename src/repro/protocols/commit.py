"""Atomic commitment: Two-Phase and Three-Phase Commit.

2PC is the tutorial's example of agreement *without* fault-tolerant
replication of the decision: value discovery (vote collection) feeds the
decision directly, so a coordinator crash in the window after cohorts
vote *yes* but before they learn the outcome leaves them **blocked** —
they can neither commit (the decision might have been abort) nor abort
(it might have been commit).  Even cooperative termination cannot help
when no surviving cohort knows the outcome.

3PC inserts the C&C fault-tolerant-agreement phase that 2PC skips: the
decision is first *replicated* to cohorts as PRE-COMMIT, and only then
committed.  With a termination protocol (elect a new coordinator,
collect states, decide by the standard rules) a single coordinator crash
no longer blocks anyone — the figure the slides draw as "Fault-tolerant
3PC (with Termination)".
"""

import enum
from dataclasses import dataclass

from ..core.framework import CCPhase, CCTrace
from ..core.node import Node
from ..core.registry import register_profile
from ..core.taxonomy import (
    Awareness,
    FailureModel,
    ProtocolProfile,
    Strategy,
    Synchrony,
)
from ..net.message import Message

TWO_PC_PROFILE = register_profile(
    ProtocolProfile(
        name="2pc",
        synchrony=Synchrony.SYNCHRONOUS,
        failure_model=FailureModel.CRASH,
        strategy=Strategy.PESSIMISTIC,
        awareness=Awareness.KNOWN,
        nodes_label="n (all must vote)",
        phases=2,
        complexity="O(N)",
        notes="blocks if the coordinator fails in the uncertainty window",
    )
)

THREE_PC_PROFILE = register_profile(
    ProtocolProfile(
        name="3pc",
        synchrony=Synchrony.SYNCHRONOUS,
        failure_model=FailureModel.CRASH,
        strategy=Strategy.PESSIMISTIC,
        awareness=Awareness.KNOWN,
        nodes_label="n (all must vote)",
        phases=3,
        complexity="O(N)",
        notes="non-blocking under single coordinator crash",
    )
)


class TxState(enum.Enum):
    """A cohort's transaction state (READY is the uncertainty window)."""

    INIT = "init"
    READY = "ready"  # voted yes; uncertain
    PRECOMMITTED = "precommitted"  # 3PC only
    COMMITTED = "committed"
    ABORTED = "aborted"


# -- messages ---------------------------------------------------------------


@dataclass(frozen=True)
class VoteRequest(Message):
    txid: str


@dataclass(frozen=True)
class Vote(Message):
    txid: str
    yes: bool


@dataclass(frozen=True)
class PreCommit(Message):
    txid: str


@dataclass(frozen=True)
class PreCommitAck(Message):
    txid: str


@dataclass(frozen=True)
class GlobalCommit(Message):
    txid: str


@dataclass(frozen=True)
class GlobalAbort(Message):
    txid: str


@dataclass(frozen=True)
class DecisionQuery(Message):
    """Cooperative termination: 'do you know the outcome of txid?'"""

    txid: str


@dataclass(frozen=True)
class StateReport(Message):
    """Reply to a decision query / new-coordinator state request."""

    txid: str
    state: str


@dataclass(frozen=True)
class StateRequest(Message):
    """New coordinator (3PC termination) collecting cohort states."""

    txid: str


# -- cohorts ----------------------------------------------------------------


class Cohort(Node):
    """A transaction participant, usable by both 2PC and 3PC.

    Parameters
    ----------
    coordinator:
        Name of the (initial) coordinator.
    peers:
        All cohort names, in succession order for 3PC termination.
    vote_yes:
        This cohort's vote.
    protocol:
        ``"2pc"`` or ``"3pc"`` — controls pre-commit handling and whether
        a coordinator timeout triggers the termination protocol or mere
        cooperative querying.
    decision_timeout:
        How long to stay READY before suspecting the coordinator.
    """

    def __init__(
        self,
        sim,
        network,
        name,
        coordinator,
        peers,
        vote_yes=True,
        protocol="3pc",
        decision_timeout=6.0,
        cooperative=True,
    ):
        super().__init__(sim, network, name)
        if protocol not in ("2pc", "3pc"):
            raise ValueError("protocol must be '2pc' or '3pc'")
        self.coordinator = coordinator
        self.peers = list(peers)
        self.vote_yes = vote_yes
        self.protocol = protocol
        self.decision_timeout = decision_timeout
        self.cooperative = cooperative
        self.state = TxState.INIT
        self.blocked = False
        self.is_recovery_coordinator = False
        self._decision_timer = None
        self._recovery_states = {}
        self._precommit_acks = set()
        self.trace = CCTrace(protocol)

    # -- voting ------------------------------------------------------------

    def handle_voterequest(self, msg, src):
        self.trace.enter(CCPhase.VALUE_DISCOVERY, self.sim.now, "vote")
        if self.vote_yes:
            self.state = TxState.READY
            self.send(src, Vote(msg.txid, True))
            self._arm_decision_timer(msg.txid)
        else:
            self.state = TxState.ABORTED
            self.send(src, Vote(msg.txid, False))

    def _arm_decision_timer(self, txid):
        if self._decision_timer is not None:
            self._decision_timer.cancel()
        self._decision_timer = self.set_timer(
            self.decision_timeout, self._on_decision_timeout, txid
        )

    # -- decisions ----------------------------------------------------------

    def handle_precommit(self, msg, src):
        if self.state is TxState.READY and self.protocol == "3pc":
            self.state = TxState.PRECOMMITTED
            self.trace.enter(CCPhase.FT_AGREEMENT, self.sim.now, "pre-commit")
            self.send(src, PreCommitAck(msg.txid))
            self._arm_decision_timer(msg.txid)

    def handle_globalcommit(self, msg, src):
        if self.state not in (TxState.COMMITTED, TxState.ABORTED):
            self.state = TxState.COMMITTED
            self.trace.enter(CCPhase.DECISION, self.sim.now, "commit")
        self.blocked = False
        self._cancel_decision_timer()

    def handle_globalabort(self, msg, src):
        if self.state not in (TxState.COMMITTED, TxState.ABORTED):
            self.state = TxState.ABORTED
            self.trace.enter(CCPhase.DECISION, self.sim.now, "abort")
        self.blocked = False
        self._cancel_decision_timer()

    def _cancel_decision_timer(self):
        if self._decision_timer is not None:
            self._decision_timer.cancel()
            self._decision_timer = None

    # -- coordinator-failure handling -----------------------------------------

    def _on_decision_timeout(self, txid):
        if self.state in (TxState.COMMITTED, TxState.ABORTED):
            return
        if self.protocol == "2pc":
            if self.cooperative:
                # Ask the other cohorts whether anyone knows the outcome.
                for peer in self.peers:
                    if peer != self.name:
                        self.send(peer, DecisionQuery(txid))
                # If nobody replies with a decision, we stay blocked.
                self.set_timer(self.decision_timeout, self._mark_blocked)
            else:
                self._mark_blocked()
        else:
            self._start_termination(txid)

    def _mark_blocked(self):
        if self.state is TxState.READY:
            self.blocked = True

    def handle_decisionquery(self, msg, src):
        self.send(src, StateReport(msg.txid, self.state.value))

    def handle_statereport(self, msg, src):
        if self.is_recovery_coordinator:
            self._recovery_states[src] = TxState(msg.state)
            self._maybe_terminate(msg.txid)
            return
        # Cooperative 2PC: adopt any known decision.
        if msg.state == TxState.COMMITTED.value:
            self.handle_globalcommit(GlobalCommit(msg.txid), src)
        elif msg.state == TxState.ABORTED.value:
            self.handle_globalabort(GlobalAbort(msg.txid), src)

    # -- 3PC termination protocol ----------------------------------------------

    def _start_termination(self, txid):
        """Elect a new coordinator and run the termination protocol.

        Succession is deterministic: the first live cohort in peer order
        takes over; others re-arm their timers and wait.  (Staggered
        timeouts in the driver make the election collision-free, matching
        the slides' 'elect new leader and execute termination protocol'.)
        """
        successor = self._successor()
        if successor != self.name:
            self._arm_decision_timer(txid)
            return
        self.is_recovery_coordinator = True
        self.trace.enter(CCPhase.LEADER_ELECTION, self.sim.now, "termination")
        self._recovery_states = {self.name: self.state}
        for peer in self.peers:
            if peer != self.name:
                self.send(peer, StateRequest(txid))
        self.set_timer(self.decision_timeout, self._maybe_terminate, txid, True)

    def _successor(self):
        for peer in self.peers:
            node = self.network.node(peer)
            if not node.crashed:
                return peer
        return self.name

    def handle_staterequest(self, msg, src):
        self.send(src, StateReport(msg.txid, self.state.value))
        self._arm_decision_timer(msg.txid)

    def _maybe_terminate(self, txid, force=False):
        if not self.is_recovery_coordinator:
            return
        if self.state in (TxState.COMMITTED, TxState.ABORTED):
            return
        live_peers = [
            p for p in self.peers if not self.network.node(p).crashed
        ]
        if not force and set(self._recovery_states) < set(live_peers):
            return  # wait for everyone alive to report
        states = set(self._recovery_states.values())
        if TxState.ABORTED in states:
            self._announce(txid, commit=False)
        elif TxState.COMMITTED in states:
            self._announce(txid, commit=True)
        elif TxState.PRECOMMITTED in states:
            # Someone reached pre-commit: the decision to commit may exist;
            # push everyone to pre-commit, then commit.
            self._precommit_acks = {self.name}
            if self.state is TxState.READY:
                self.state = TxState.PRECOMMITTED
            for peer in self._recovery_states:
                if peer != self.name:
                    self.send(peer, PreCommit(txid))
            self.set_timer(self.decision_timeout, self._announce, txid, True)
        else:
            # All uncertain: nobody can have committed — abort is safe.
            self._announce(txid, commit=False)

    def handle_precommitack(self, msg, src):
        if self.is_recovery_coordinator:
            self._precommit_acks.add(src)

    def _announce(self, txid, commit):
        message = GlobalCommit(txid) if commit else GlobalAbort(txid)
        for peer in self.peers:
            if peer != self.name:
                self.send(peer, message)
        if commit:
            self.handle_globalcommit(GlobalCommit(txid), self.name)
        else:
            self.handle_globalabort(GlobalAbort(txid), self.name)


# -- coordinator ---------------------------------------------------------------


class Coordinator(Node):
    """The (initial) transaction coordinator for 2PC and 3PC.

    Crash injection: ``crash_after`` ∈ {None, "votes", "precommits",
    "partial_decision"} — the classic failure windows.
    """

    def __init__(
        self,
        sim,
        network,
        name,
        cohorts,
        txid="tx1",
        protocol="3pc",
        crash_after=None,
        partial_count=0,
    ):
        super().__init__(sim, network, name)
        self.cohorts = list(cohorts)
        self.txid = txid
        self.protocol = protocol
        self.crash_after = crash_after
        self.partial_count = partial_count
        self.votes = {}
        self.precommit_acks = set()
        self.decision = None
        self.trace = CCTrace(protocol)

    def on_start(self):
        self.trace.enter(CCPhase.VALUE_DISCOVERY, self.sim.now, "vote-request")
        if self.network.metrics is not None:
            self.network.metrics.mark_phase(self.protocol, "vote", self.sim.now)
        self.multicast(self.cohorts, VoteRequest(self.txid))

    def handle_vote(self, msg, src):
        if self.decision is not None:
            return
        self.votes[src] = msg.yes
        if not msg.yes:
            self._decide(commit=False)
            return
        if len(self.votes) == len(self.cohorts) and all(self.votes.values()):
            if self.crash_after == "votes":
                self.crash()
                return
            if self.protocol == "3pc":
                self.trace.enter(CCPhase.FT_AGREEMENT, self.sim.now, "pre-commit")
                if self.network.metrics is not None:
                    self.network.metrics.mark_phase("3pc", "pre-commit", self.sim.now)
                self.multicast(self.cohorts, PreCommit(self.txid))
            else:
                self._decide(commit=True)

    def handle_precommitack(self, msg, src):
        if self.decision is not None:
            return
        self.precommit_acks.add(src)
        if len(self.precommit_acks) == len(self.cohorts):
            if self.crash_after == "precommits":
                self.crash()
                return
            self._decide(commit=True)

    def _decide(self, commit):
        self.decision = "commit" if commit else "abort"
        self.trace.enter(CCPhase.DECISION, self.sim.now, self.decision)
        if self.network.metrics is not None:
            self.network.metrics.mark_phase(self.protocol, "decision", self.sim.now)
        message = GlobalCommit(self.txid) if commit else GlobalAbort(self.txid)
        targets = self.cohorts
        if self.crash_after == "partial_decision":
            targets = self.cohorts[: self.partial_count]
        self.multicast(targets, message)
        if self.crash_after == "partial_decision":
            self.crash()


# -- driver -----------------------------------------------------------------


@dataclass
class CommitResult:
    coordinator: object
    cohorts: list
    messages: int
    duration: float

    def outcomes(self):
        return [c.state for c in self.cohorts]

    def blocked_cohorts(self):
        return [c.name for c in self.cohorts if c.blocked]

    def atomic(self):
        """All non-crashed cohorts reached the same terminal state (or are
        still uncertain — atomicity is only about *divergent* decisions)."""
        terminal = {
            c.state
            for c in self.cohorts
            if not c.crashed and c.state in (TxState.COMMITTED, TxState.ABORTED)
        }
        return len(terminal) <= 1


def run_commit(
    cluster,
    protocol="2pc",
    n_cohorts=3,
    votes=None,
    crash_after=None,
    partial_count=0,
    horizon=100.0,
    cooperative=True,
):
    """Run one distributed transaction through 2PC or 3PC.

    ``votes`` is an optional per-cohort list of booleans (default: all yes).
    """
    cohort_names = ["s%d" % i for i in range(n_cohorts)]
    votes = votes if votes is not None else [True] * n_cohorts
    cohorts = [
        cluster.add_node(
            Cohort,
            name,
            "coord",
            cohort_names,
            vote_yes=votes[i],
            protocol=protocol,
            # Staggered timeouts make 3PC succession deterministic.
            decision_timeout=6.0 + i * 2.0,
            cooperative=cooperative,
        )
        for i, name in enumerate(cohort_names)
    ]
    coordinator = cluster.add_node(
        Coordinator,
        "coord",
        cohort_names,
        protocol=protocol,
        crash_after=crash_after,
        partial_count=partial_count,
    )
    cluster.start_all()
    cluster.run(until=horizon)
    return CommitResult(
        coordinator=coordinator,
        cohorts=cohorts,
        messages=cluster.metrics.messages_total,
        duration=cluster.now,
    )
