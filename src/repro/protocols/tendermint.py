"""Tendermint-style BFT (the tutorial's closing slide: "has its own
consensus protocol — extends PBFT with leader rotation").

Permissioned-blockchain consensus: a sequence of *heights*, each decided
by rounds of **propose → prevote → precommit** among 3f+1 validators,
with a proposer rotating every round.  The safety core is the locking
rule: a validator that sees 2f+1 prevotes for a block *locks* on it and
will prevote nothing else in later rounds of the same height until a
newer lock replaces it; any two 2f+1 quorums intersect in an honest
validator, so conflicting blocks can never both gather precommit
quorums.  Liveness comes from round timeouts rotating the proposer —
view change folded into normal operation, like HotStuff.

The decided values form a hash-linked chain of blocks, which is what
makes this "blockchain consensus" rather than one-shot agreement.
"""

import enum
from dataclasses import dataclass

from ..core.exceptions import ConfigurationError
from ..core.node import Node
from ..core.registry import register_profile
from ..core.taxonomy import (
    Awareness,
    FailureModel,
    ProtocolProfile,
    Strategy,
    Synchrony,
)
from ..crypto.hashing import sha256_hex
from ..net.message import Message

PROFILE = register_profile(
    ProtocolProfile(
        name="tendermint",
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        failure_model=FailureModel.BYZANTINE,
        strategy=Strategy.PESSIMISTIC,
        awareness=Awareness.KNOWN,
        nodes_label="3f+1",
        phases=3,
        complexity="O(N^2)",
        notes="PBFT with per-round proposer rotation; decides a block chain",
    )
)

NIL = "<nil>"


@dataclass(frozen=True)
class TmBlock:
    height: int
    prev_hash: str
    payload: object

    @property
    def hash(self):
        return sha256_hex(self.height, self.prev_hash, self.payload)


@dataclass(frozen=True)
class TmProposal(Message):
    height: int
    round: int
    block: TmBlock

    @property
    def digest(self):
        """The proposed block's hash, lifted into trace detail so
        equivocating proposals are comparable across receivers."""
        return self.block.hash


@dataclass(frozen=True)
class Prevote(Message):
    height: int
    round: int
    block_hash: str  # or NIL


@dataclass(frozen=True)
class Precommit(Message):
    height: int
    round: int
    block_hash: str  # or NIL


class Step(enum.Enum):
    """Position within a Tendermint round."""

    PROPOSE = "propose"
    PREVOTE = "prevote"
    PRECOMMIT = "precommit"


class TendermintNode(Node):
    """One validator.

    Parameters
    ----------
    payload_source:
        Callable height -> payload for blocks this validator proposes.
    """

    PROPOSE_TIMEOUT = 6.0
    VOTE_TIMEOUT = 6.0

    def __init__(self, sim, network, name, peers, f, payload_source=None,
                 target_height=None):
        super().__init__(sim, network, name)
        self.peers = list(peers)
        self.n = len(self.peers)
        if self.n < 3 * f + 1:
            raise ConfigurationError(
                "Tendermint needs n >= 3f+1 (n=%d, f=%d)" % (self.n, f)
            )
        self.f = f
        self.quorum = 2 * f + 1
        self.payload_source = payload_source or (lambda h: "block-%d" % h)
        self.target_height = target_height

        self.height = 1
        self.round = 0
        self.step = Step.PROPOSE
        self.locked_hash = None
        self.locked_block = None
        self.locked_round = -1
        self.chain = []  # committed TmBlocks
        self._blocks = {}  # hash -> TmBlock (seen proposals)
        self._prevotes = {}  # (height, round) -> {sender: hash}
        self._precommits = {}  # (height, round) -> {sender: hash}
        self._step_timer = None
        self.rounds_used = {}  # height -> rounds consumed

    # -- round structure --------------------------------------------------------

    def proposer_of(self, height, round_):
        return self.peers[(height + round_) % self.n]

    @property
    def prev_hash(self):
        return self.chain[-1].hash if self.chain else "genesis"

    def on_start(self):
        self._enter_round(0)

    def _done(self):
        return (self.target_height is not None
                and len(self.chain) >= self.target_height)

    def _enter_round(self, round_):
        if self.crashed or self._done():
            return
        self.round = round_
        self.step = Step.PROPOSE
        self.rounds_used[self.height] = round_ + 1
        if self.proposer_of(self.height, round_) == self.name:
            block = self.locked_block if self.locked_block is not None else \
                TmBlock(self.height, self.prev_hash,
                        self.payload_source(self.height))
            if self.network.metrics is not None:
                self.network.metrics.mark_phase("tendermint", "propose",
                                                self.sim.now)
            proposal = TmProposal(self.height, round_, block)
            self._on_proposal(proposal, self.name)
            for peer in self.peers:
                if peer != self.name:
                    self.send(peer, proposal)
        self._arm_step_timer(self.PROPOSE_TIMEOUT, self._on_propose_timeout,
                             self.height, round_)

    def _arm_step_timer(self, delay, callback, *args):
        if self._step_timer is not None:
            self._step_timer.cancel()
        self._step_timer = self.set_timer(delay, callback, *args)

    # -- propose ------------------------------------------------------------------

    def handle_tmproposal(self, msg, src):
        if src != self.proposer_of(msg.height, msg.round):
            return
        self._on_proposal(msg, src)

    def _on_proposal(self, msg, src):
        if msg.height != self.height or msg.round != self.round:
            return
        if self.step is not Step.PROPOSE:
            return
        block = msg.block
        self._blocks[block.hash] = block
        valid = (block.height == self.height
                 and block.prev_hash == self.prev_hash)
        # Locking rule: once locked, prevote only the locked block.
        if self.locked_hash is not None and block.hash != self.locked_hash:
            vote_hash = NIL
        elif valid:
            vote_hash = block.hash
        else:
            vote_hash = NIL
        self._broadcast_prevote(vote_hash)

    def _on_propose_timeout(self, height, round_):
        if (height, round_) != (self.height, self.round) or \
                self.step is not Step.PROPOSE:
            return
        self._broadcast_prevote(NIL)

    # -- prevote -------------------------------------------------------------------

    def _broadcast_prevote(self, block_hash):
        self.step = Step.PREVOTE
        if self.network.metrics is not None:
            self.network.metrics.mark_phase("tendermint", "prevote",
                                            self.sim.now)
        vote = Prevote(self.height, self.round, block_hash)
        self._record_prevote(self.height, self.round, block_hash, self.name)
        for peer in self.peers:
            if peer != self.name:
                self.send(peer, vote)
        self._arm_step_timer(self.VOTE_TIMEOUT, self._on_prevote_timeout,
                             self.height, self.round)

    def handle_prevote(self, msg, src):
        self._record_prevote(msg.height, msg.round, msg.block_hash, src)

    def _record_prevote(self, height, round_, block_hash, sender):
        votes = self._prevotes.setdefault((height, round_), {})
        votes[sender] = block_hash
        if (height, round_) != (self.height, self.round):
            return
        if self.step is not Step.PREVOTE:
            return
        counts = self._counts(votes)
        for value, count in counts.items():
            if count < self.quorum:
                continue
            if value != NIL:
                # 2f+1 prevotes: lock and precommit the block.
                self.locked_hash = value
                self.locked_block = self._blocks.get(value)
                self.locked_round = round_
                self._broadcast_precommit(value)
            else:
                self._broadcast_precommit(NIL)
            return

    def _on_prevote_timeout(self, height, round_):
        if (height, round_) != (self.height, self.round) or \
                self.step is not Step.PREVOTE:
            return
        self._broadcast_precommit(NIL)

    # -- precommit -------------------------------------------------------------------

    def _broadcast_precommit(self, block_hash):
        self.step = Step.PRECOMMIT
        if self.network.metrics is not None:
            self.network.metrics.mark_phase("tendermint", "precommit",
                                            self.sim.now)
        vote = Precommit(self.height, self.round, block_hash)
        self._record_precommit(self.height, self.round, block_hash, self.name)
        for peer in self.peers:
            if peer != self.name:
                self.send(peer, vote)
        self._arm_step_timer(self.VOTE_TIMEOUT, self._on_precommit_timeout,
                             self.height, self.round)

    def handle_precommit(self, msg, src):
        self._record_precommit(msg.height, msg.round, msg.block_hash, src)

    def _record_precommit(self, height, round_, block_hash, sender):
        votes = self._precommits.setdefault((height, round_), {})
        votes[sender] = block_hash
        if height != self.height:
            return
        counts = self._counts(votes)
        for value, count in counts.items():
            if count >= self.quorum and value != NIL:
                block = self._blocks.get(value)
                if block is not None:
                    self._commit(block)
                return
        if (height, round_) == (self.height, self.round) and \
                len(votes) >= self.quorum and \
                counts.get(NIL, 0) >= self.quorum:
            self._enter_round(self.round + 1)

    def _on_precommit_timeout(self, height, round_):
        if (height, round_) != (self.height, self.round) or \
                self.step is not Step.PRECOMMIT:
            return
        self._enter_round(self.round + 1)

    @staticmethod
    def _counts(votes):
        counts = {}
        for value in votes.values():
            counts[value] = counts.get(value, 0) + 1
        return counts

    # -- commit ----------------------------------------------------------------------

    def _commit(self, block):
        if block.height != self.height:
            return
        self.trace_local("commit", height=block.height, block=block.hash)
        self.chain.append(block)
        self.height += 1
        self.locked_hash = None
        self.locked_block = None
        self.locked_round = -1
        if not self._done():
            self._enter_round(0)
        elif self._step_timer is not None:
            self._step_timer.cancel()


class SilentProposer(TendermintNode):
    """A validator that never proposes — its rounds time out and the
    rotation skips past it (liveness through built-in view change)."""

    def _enter_round(self, round_):
        if self.proposer_of(self.height, round_) == self.name:
            # Enter the round but propose nothing.
            self.round = round_
            self.step = Step.PROPOSE
            self.rounds_used[self.height] = round_ + 1
            self._arm_step_timer(self.PROPOSE_TIMEOUT,
                                 self._on_propose_timeout,
                                 self.height, round_)
            return
        super()._enter_round(round_)


@dataclass
class TendermintResult:
    validators: list
    messages: int
    duration: float

    def chains(self):
        return [[b.hash for b in v.chain] for v in self.validators
                if not v.crashed]

    def chains_consistent(self):
        chains = self.chains()
        for chain_a in chains:
            for chain_b in chains:
                for x, y in zip(chain_a, chain_b):
                    if x != y:
                        return False
        return True

    def min_height(self):
        return min(len(v.chain) for v in self.validators if not v.crashed)

    def rounds_per_height(self):
        merged = {}
        for validator in self.validators:
            for height, rounds in validator.rounds_used.items():
                merged[height] = max(merged.get(height, 0), rounds)
        return merged


def run_tendermint(cluster, f=1, heights=5, silent_indices=(),
                   horizon=4000.0):
    """Drive a Tendermint chain to ``heights`` committed blocks."""
    n = 3 * f + 1
    names = ["v%d" % i for i in range(n)]
    validators = []
    for index, name in enumerate(names):
        cls = SilentProposer if index in silent_indices else TendermintNode
        validators.append(
            cluster.add_node(cls, name, names, f, target_height=heights)
        )
    cluster.start_all()
    cluster.run_until(
        lambda: all(len(v.chain) >= heights
                    for v in validators if not v.crashed),
        until=horizon,
    )
    return TendermintResult(
        validators=validators,
        messages=cluster.metrics.messages_total,
        duration=cluster.now,
    )
