"""XFT (Liu et al., OSDI 2016): fault tolerance beyond crashes, without
paying full BFT prices.

The model from the slides: with n = **2f+1** replicas, XFT counts three
kinds of trouble at a moment s — **c(s)** crashed, **m(s)** non-crash
(Byzantine), and **p(s)** correct-but-**partitioned** replicas.  The
system is in **anarchy** iff ``m(s) > 0`` **and**
``c(s) + m(s) + p(s) > floor((n-1)/2)``.  *XFT satisfies safety in
executions in which the system is never in anarchy* — i.e. it survives
any combination of faults a majority can outvote, plus Byzantine faults
as long as machines *and* network don't fail simultaneously beyond the
majority.

XPaxos (the agreement protocol): an active **synchronous group** of f+1
replicas runs the common case — leader sends PREPARE, the group
exchanges COMMIT all-to-all, and a request completes when every group
member has committed; the remaining f replicas are passive (lazily
updated).  A fault inside the group triggers a view change that
reconfigures the *entire* synchronous group.

The anarchy experiment (E13) shows both directions: no divergence while
the anarchy predicate is false, and a concrete divergence constructed
once it turns true (Byzantine leader + partition).
"""

from dataclasses import dataclass

from ..core.exceptions import ConfigurationError
from ..core.node import Node
from ..core.registry import register_profile
from ..core.taxonomy import (
    Awareness,
    FailureModel,
    ProtocolProfile,
    Strategy,
    Synchrony,
)
from ..net.message import Message

PROFILE = register_profile(
    ProtocolProfile(
        name="xft",
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        failure_model=FailureModel.HYBRID,
        strategy=Strategy.OPTIMISTIC,
        awareness=Awareness.KNOWN,
        nodes_label="2f+1",
        phases=2,
        complexity="O(N)",
        notes="safe unless in anarchy (m>0 and c+m+p > majority)",
    )
)


def in_anarchy(n, crashed, byzantine, partitioned):
    """The anarchy predicate from the slides."""
    return byzantine > 0 and (crashed + byzantine + partitioned) > (n - 1) // 2


@dataclass(frozen=True)
class XRequest(Message):
    operation: object
    timestamp: float
    client: str


@dataclass(frozen=True)
class XPrepare(Message):
    view: int
    seq: int
    operation: object
    timestamp: float
    client: str


@dataclass(frozen=True)
class XCommit(Message):
    view: int
    seq: int
    operation: object


@dataclass(frozen=True)
class XReply(Message):
    replica: str
    timestamp: float
    result: object


@dataclass(frozen=True)
class XViewChange(Message):
    """View-change vote, carrying the sender's committed log — the state
    transfer that makes reconfiguration safe *outside* anarchy.  A
    Byzantine sender lies by sending an empty log; a partition keeps a
    correct sender's log from arriving: either alone is survivable, the
    combination is anarchy."""

    new_view: int
    log: tuple  # ((seq, operation), ...)


@dataclass(frozen=True)
class XLazyUpdate(Message):
    seq: int
    operation: object


class XftReplica(Node):
    """An XPaxos replica.

    The synchronous group of view v is the f+1 consecutive replicas
    starting at index v (mod n); its first member leads.  View change
    here is deliberately simple — replicas suspecting the group broadcast
    VIEW-CHANGE and move on when f+1 agree — because the reproduced
    claims are the common case shape and the anarchy boundary, not
    XPaxos's full view-change machinery.
    """

    VIEW_TIMEOUT = 25.0

    def __init__(self, sim, network, name, peers, f,
                 state_machine_factory=None):
        super().__init__(sim, network, name)
        self.peers = list(peers)
        self.n = len(self.peers)
        if self.n < 2 * f + 1:
            raise ConfigurationError(
                "XFT needs n >= 2f+1 (n=%d, f=%d)" % (self.n, f)
            )
        self.f = f
        self.view = 0
        if state_machine_factory is None:
            from .multipaxos import ListStateMachine
            state_machine_factory = ListStateMachine
        self.state_machine = state_machine_factory()
        self.executed = []  # (seq, operation)
        self._executed_seqs = set()
        self.next_seq = 0
        self._commits = {}  # (view, seq) -> {name: operation}
        self._requests = {}  # seq -> (operation, timestamp, client)
        self._seen = set()
        self._vc_votes = {}  # new_view -> {name: log}
        self._pending_timer = None
        self._outstanding = 0  # requests proposed but not yet executed

    # -- group arithmetic -----------------------------------------------------

    def group_of(self, view):
        return [self.peers[(view + k) % self.n] for k in range(self.f + 1)]

    @property
    def sync_group(self):
        return self.group_of(self.view)

    @property
    def leader_name(self):
        return self.sync_group[0]

    @property
    def in_group(self):
        return self.name in self.sync_group

    # -- common case -----------------------------------------------------------

    def handle_xrequest(self, msg, src):
        if self.name != self.leader_name:
            self.send(self.leader_name, msg)
            self._arm_suspicion()
            return
        key = (msg.client, msg.timestamp)
        if key in self._seen:
            return
        self._seen.add(key)
        seq = self.next_seq
        self.next_seq += 1
        self._requests[seq] = (msg.operation, msg.timestamp, msg.client)
        self._outstanding += 1
        self._arm_suspicion()
        if self.network.metrics is not None:
            self.network.metrics.mark_phase("xft", "prepare", self.sim.now)
        prepare = XPrepare(self.view, seq, msg.operation, msg.timestamp,
                           msg.client)
        for member in self.sync_group:
            if member != self.name:
                self.send(member, prepare)
        self._record_commit(self.view, seq, msg.operation, self.name)

    def handle_xprepare(self, msg, src):
        if src != self.leader_name or msg.view != self.view or not self.in_group:
            return
        self._requests[msg.seq] = (msg.operation, msg.timestamp, msg.client)
        if self.network.metrics is not None:
            self.network.metrics.mark_phase("xft", "commit", self.sim.now)
        commit = XCommit(msg.view, msg.seq, msg.operation)
        self._record_commit(msg.view, msg.seq, msg.operation, self.name)
        for member in self.sync_group:
            if member != self.name:
                self.send(member, commit)

    def handle_xcommit(self, msg, src):
        if msg.view != self.view or not self.in_group:
            return
        self._record_commit(msg.view, msg.seq, msg.operation, src)

    def _record_commit(self, view, seq, operation, sender):
        votes = self._commits.setdefault((view, seq), {})
        votes[sender] = operation
        group = set(self.group_of(view))
        matching = {s for s, op in votes.items() if op == operation}
        # XPaxos requires commits from the *entire* synchronous group.
        if matching >= group and seq not in self._executed_seqs:
            request = self._requests.get(seq)
            if request is None:
                return
            operation_, timestamp, client = request
            self._execute(seq, operation_, timestamp, client)
            if self.name == self.leader_name:
                for peer in self.peers:
                    if peer not in group:
                        self.send(peer, XLazyUpdate(seq, operation_))

    def handle_xlazyupdate(self, msg, src):
        # Passive replica: adopt the committed operation lazily.
        if msg.seq not in self._executed_seqs:
            self._execute(msg.seq, msg.operation, None, None)

    def _execute(self, seq, operation, timestamp, client):
        if seq in self._executed_seqs:
            return
        self._executed_seqs.add(seq)
        result = self.state_machine.apply(operation)
        self.executed.append((seq, operation))
        if self._outstanding > 0:
            self._outstanding -= 1
        if self._outstanding == 0 and self._pending_timer is not None:
            self._pending_timer.cancel()
            self._pending_timer = None
        if client is not None:
            self.send(client, XReply(self.name, timestamp, result))

    # -- view change ---------------------------------------------------------------

    def _arm_suspicion(self):
        if self._pending_timer is None or not self._pending_timer.active:
            self._pending_timer = self.set_timer(self.VIEW_TIMEOUT,
                                                 self._suspect)

    def _own_log(self):
        return tuple(sorted(self.executed))

    def _suspect(self):
        self._pending_timer = None
        new_view = self.view + 1
        self._record_vc(new_view, self.name, self._own_log())
        for peer in self.peers:
            if peer != self.name:
                self.send(peer, XViewChange(new_view, self._own_log()))
        # Keep suspecting while nothing makes progress (the next group
        # may contain another crashed replica).
        if self._outstanding > 0:
            self._arm_suspicion()

    def handle_xviewchange(self, msg, src):
        if msg.new_view <= self.view:
            return
        self._record_vc(msg.new_view, src, msg.log)

    def _record_vc(self, new_view, sender, log):
        votes = self._vc_votes.setdefault(new_view, {})
        votes[sender] = log
        if len(votes) >= self.f + 1 and new_view > self.view:
            if self.name not in votes:
                votes[self.name] = self._own_log()
                for peer in self.peers:
                    if peer != self.name:
                        self.send(peer, XViewChange(new_view, self._own_log()))
            self.view = new_view
            if self.network.metrics is not None:
                self.network.metrics.mark_phase("xft", "view-change",
                                                self.sim.now)
            self._install_view(votes)

    def _install_view(self, votes):
        """State transfer: adopt every committed entry reported by the
        view-change quorum, then continue sequencing past them."""
        adopted = dict(self.executed)
        for log in votes.values():
            for seq, operation in log:
                adopted.setdefault(seq, operation)
        for seq in sorted(adopted):
            if seq not in self._executed_seqs:
                self._execute(seq, adopted[seq], None, None)
        self.next_seq = max(
            [self.next_seq] + [seq + 1 for seq in adopted]
        )


class ByzantineXftLeader(XftReplica):
    """The anarchy attack: a leader that commits and then lies about it.

    Step 1: as the view-0 leader it commits operation A with its group
    partner.  Step 2: during the ensuing view changes it reports an
    *empty* committed log, hiding A.  Outside anarchy this is harmless —
    the correct partner's view-change vote carries A, so the new group
    adopts it.  Inside anarchy (the partner is partitioned away) the
    only log the new group sees is the Byzantine one, the sequence
    number is reused for a different operation, and the two sides of
    the partition diverge.
    """

    def _own_log(self):
        return ()  # the lie: hide everything we committed

    def commit_with(self, victim, seq, operation):
        """Run the view-0 common case with ``victim`` only."""
        self._requests[seq] = (operation, 0.0, "_sink")
        self.send(victim, XPrepare(0, seq, operation, 0.0, "_sink"))
        self.send(victim, XCommit(0, seq, operation))

    def vote_for_view(self, new_view):
        for peer in self.peers:
            if peer != self.name:
                self.send(peer, XViewChange(new_view, ()))


class XftClient(Node):
    """Completes on a single reply from the synchronous group (all of
    whose members committed — the group is trusted as a unit in XFT's
    common case); the experiments inspect replica logs directly."""

    def __init__(self, sim, network, name, replicas, operations,
                 retry_timeout=40.0):
        super().__init__(sim, network, name)
        self.replicas = list(replicas)
        self.operations = list(operations)
        self.retry_timeout = retry_timeout
        self.results = []
        self._next = 0
        self._timer = None

    def on_start(self):
        self._send_next()

    def _send_next(self):
        if self.done:
            return
        self.send(self.replicas[0],
                  XRequest(self.operations[self._next], float(self._next),
                           self.name))
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.set_timer(self.retry_timeout, self._retry,
                                     self._next)

    def _retry(self, expected_next):
        if self.done or self._next != expected_next:
            return
        # Broadcast so every replica forwards (and suspects a dead group).
        self.multicast(
            self.replicas,
            XRequest(self.operations[self._next], float(self._next),
                     self.name),
        )
        self._timer = self.set_timer(self.retry_timeout, self._retry,
                                     self._next)

    def handle_xreply(self, msg, src):
        if self.done or msg.timestamp != float(self._next):
            return
        self.results.append(msg.result)
        self._next += 1
        self._send_next()

    @property
    def done(self):
        return self._next >= len(self.operations)


@dataclass
class XftResult:
    replicas: list
    clients: list
    messages: int
    duration: float

    def logs_consistent(self):
        merged = {}
        for replica in self.replicas:
            for seq, op in replica.executed:
                if seq in merged and merged[seq] != op:
                    return False
                merged[seq] = op
        return True


def run_xft(cluster, f=1, operations=3, crash_group_member_at=None,
            horizon=2000.0):
    """Drive XPaxos's common case; optionally crash a synchronous-group
    member to exercise the view change."""
    n = 2 * f + 1
    names = ["r%d" % i for i in range(n)]
    replicas = cluster.add_nodes(XftReplica, names, names, f)
    client = cluster.add_node(
        XftClient, "c0", names,
        ["op-%d" % i for i in range(operations)],
    )
    if crash_group_member_at is not None:
        cluster.sim.schedule(crash_group_member_at, replicas[1].crash)
    cluster.start_all()
    cluster.run_until(lambda: client.done, until=horizon)
    return XftResult(
        replicas=replicas,
        clients=[client],
        messages=cluster.metrics.messages_total,
        duration=cluster.now,
    )


class _Sink(Node):
    """Absorbs replies addressed to the attack's fake client."""


def _xft_attack(cluster, partitioned, horizon=300.0):
    """Shared skeleton for the anarchy experiment and its control.

    n=3, f=1.  r0 is Byzantine (view-0 leader, lies in view changes);
    ``partitioned`` decides whether r1 is cut off from r2.  With the
    partition: c=0, m=1, p=1 → m>0 and c+m+p=2 > floor(2/2)=1 →
    **anarchy**, and the committed operation A is lost when r2 takes
    over, reusing seq 0 for B.  Without it (m=1, p=0 → not anarchy),
    r1's view-change vote carries A and safety holds.
    """
    names = ["r0", "r1", "r2"]
    leader = cluster.add_node(ByzantineXftLeader, "r0", names, 1)
    honest = [cluster.add_node(XftReplica, name, names, 1)
              for name in names[1:]]
    r1, r2 = honest
    cluster.add_node(_Sink, "_sink")
    if partitioned:
        def block_r1_r2(src, dst, message):
            if {src, dst} == {"r1", "r2"}:
                return False
            return None
        cluster.network.add_interceptor(block_r1_r2)
    # The client starts with no operations (so start_all is a no-op for
    # it); op-B is injected at t=30, after the scripted view changes.
    client = cluster.add_node(XftClient, "atk-client", ["r2"], [])
    client.retry_timeout = 1e9  # single shot

    def inject_request():
        client.operations = ["op-B"]
        client._send_next()

    cluster.start_all()
    # Step 1: Byzantine leader commits A with r1 in view 0.
    cluster.sim.schedule(1.0, leader.commit_with, "r1", 0, "op-A")
    # Step 2: drive two view changes (r2 suspects; r0 votes along, lying).
    cluster.sim.schedule(10.0, r1._suspect)   # no-op across a partition
    cluster.sim.schedule(12.0, r2._suspect)
    cluster.sim.schedule(12.5, leader.vote_for_view, 1)
    cluster.sim.schedule(20.0, r1._suspect)
    cluster.sim.schedule(22.0, r2._suspect)
    cluster.sim.schedule(22.5, leader.vote_for_view, 2)
    # Step 3: in view 2, group [r2, r0] serves a new request.
    cluster.sim.schedule(30.0, inject_request)
    cluster.run(until=horizon)
    return XftResult(
        replicas=[leader] + honest,
        clients=[client],
        messages=cluster.metrics.messages_total,
        duration=cluster.now,
    )


def run_xft_anarchy(cluster, horizon=300.0):
    """The anarchy divergence: Byzantine leader + partition (see
    :func:`_xft_attack`).  Honest replicas r1 and r2 end up with
    conflicting operations at sequence 0."""
    return _xft_attack(cluster, partitioned=True, horizon=horizon)


def run_xft_no_anarchy_control(cluster, horizon=300.0):
    """The same Byzantine leader *without* the partition: not anarchy,
    and the state transfer in r1's view-change vote preserves safety."""
    return _xft_attack(cluster, partitioned=False, horizon=horizon)
