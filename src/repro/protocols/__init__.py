"""Every protocol from the tutorial, one module each.

Crash-fault consensus: :mod:`paxos` (single-decree), :mod:`multipaxos`,
:mod:`fast_paxos`, :mod:`flexible_paxos`, :mod:`raft`, :mod:`benor`
(randomized, the FLP circumvention).

Atomic commitment: :mod:`commit` (2PC and 3PC).

Byzantine agreement: :mod:`interactive_consistency` (Pease–Shostak–
Lamport), :mod:`pbft`, :mod:`zyzzyva`, :mod:`hotstuff`.

Hybrid / trusted-component: :mod:`minbft`, :mod:`cheapbft`,
:mod:`upright`, :mod:`seemore`, :mod:`xft`.

Importing this package registers every protocol's property box
(:class:`~repro.core.taxonomy.ProtocolProfile`) in the global registry,
from which the analysis layer renders the comparison table.
"""

from . import (  # noqa: F401  (imported for profile registration)
    benor,
    chandra_toueg,
    cheapbft,
    commit,
    fast_paxos,
    flexible_paxos,
    hotstuff,
    interactive_consistency,
    minbft,
    multipaxos,
    paxos,
    pbft,
    raft,
    seemore,
    tendermint,
    upright,
    xft,
    zyzzyva,
)

__all__ = [
    "benor",
    "chandra_toueg",
    "cheapbft",
    "commit",
    "fast_paxos",
    "flexible_paxos",
    "hotstuff",
    "interactive_consistency",
    "minbft",
    "multipaxos",
    "paxos",
    "pbft",
    "raft",
    "seemore",
    "tendermint",
    "upright",
    "xft",
    "zyzzyva",
]
