"""Paper claims, comparison tables, experiment reporting."""

from .claims import LOWER_BOUNDS, PAPER_TABLE, PaperClaim, claim_for
from .report import collect_results, generate_experiments_md
from .tables import comparison_table, render_table

__all__ = [
    "LOWER_BOUNDS",
    "PAPER_TABLE",
    "PaperClaim",
    "claim_for",
    "collect_results",
    "comparison_table",
    "generate_experiments_md",
    "render_table",
]
