"""EXPERIMENTS.md generation from benchmark result artifacts.

Each benchmark in ``benchmarks/`` writes its paper-vs-measured table to
``benchmarks/results/E<k>_<slug>.txt``; this module stitches those
artifacts together with per-experiment commentary into EXPERIMENTS.md.
Exposed on the CLI as ``python -m repro experiments``.
"""

import pathlib
import re

#: Commentary per experiment: (title, what-the-paper-claims vs measured).
EXPERIMENT_NOTES = {
    "E1": ("The comparison table",
           "Paper: the per-protocol property boxes (nodes / phases / message\n"
           "complexity). Measured: live runs at f=1 plus a cluster-size sweep with\n"
           "log-log complexity fitting. Every claim matches, with one honest\n"
           "deviation: MinBFT's COMMIT phase is all-to-all in the protocol (and in\n"
           "the tutorial's own sequence diagram), so the *measured* message count\n"
           "fits O(N^2); the slide's box says O(N), counting per-sender cost. The\n"
           "headline claims - 2f+1 replicas and 2 phases, 'same as Paxos' - hold."),
    "E2": ("Paxos message flow",
           "Paper: the prepare/accept/decide diagram on 2f+1 nodes. Measured:\n"
           "exactly n messages per phase direction, majority quorums, and the\n"
           "decision existing after 4 one-way delays (2 phases), at every f."),
    "E3": ("The livelock figure",
           "Paper: 'competing proposers can livelock' (the S1..S5 schedule);\n"
           "'one solution: randomized delay before restarting.' Measured: with\n"
           "fixed symmetric restart delays, 0/10 seeded duels ever decide (100+\n"
           "preempting rounds each); with randomized backoff, 10/10 decide."),
    "E4": ("Multi-Paxos's optimisation",
           "Paper: run phase 1 only when the leader changes. Measured over 20\n"
           "commands: basic Paxos pays ~2n phase-1 messages per command; Multi-\n"
           "Paxos pays ~0 (one bootstrap election amortised over the log), with\n"
           "comparable phase-2 cost per command."),
    "E5": ("Fast Paxos",
           "Paper: 2 message delays instead of 3, needing 3f+1 nodes; collisions\n"
           "fall back to a classic round. Measured: fast round learns in exactly\n"
           "2.0 delays vs 3.0 for basic Paxos; racing clients collide in a third\n"
           "of jittered runs and always converge on exactly one value, paying\n"
           ">1.3x the delay in recovery."),
    "E6": ("Flexible Paxos",
           "Paper: only phase-1 x phase-2 intersection is needed; replication\n"
           "quorums may shrink arbitrarily; no changes to the algorithm. Measured:\n"
           "counting (|Q1|=10,|Q2|=3) and grid (4x3) systems decide with the\n"
           "unmodified Paxos engine while replication quorums sit far below the\n"
           "majority; the negative control (non-intersecting quorums) decides TWO\n"
           "values - quorum intersection is exactly where safety lives."),
    "E7": ("2PC blocks, 3PC doesn't",
           "Paper: 2PC's uncertainty window blocks; 3PC replicates the decision\n"
           "(pre-commit) and terminates. Measured: coordinator crash after votes\n"
           "blocks all 3 cohorts under 2PC forever; under 3PC the termination\n"
           "protocol elects a recovery coordinator and resolves (abort if nobody\n"
           "pre-committed, commit if anyone did), atomically, every time."),
    "E8": ("The 3f+1 lower bound",
           "Paper: the worked interactive-consistency examples. Measured: N=4/f=1\n"
           "yields identical honest vectors (1, 2, UNKNOWN, 4) - agreement and\n"
           "validity hold; N=3/f=1 yields all-UNKNOWN. The recursive OM(m) sweep\n"
           "satisfies IC exactly when n >= 3m+1."),
    "E9": ("PBFT",
           "Paper: 3 phases, 3f+1 nodes, O(N^2) agreement, O(N^3) view change.\n"
           "Measured: all three phase types present; agreement traffic fits\n"
           "O(N^2) (exponent ~2.2); view-change message count grows superlinearly\n"
           "with certificate payloads carrying the extra O(N) factor the paper\n"
           "counts in bits."),
    "E10": ("Zyzzyva",
            "Paper: speculative execution, commitment at the client; case 1 = 3f+1\n"
            "matching replies in one phase, case 2 = 2f+1 + commit certificate.\n"
            "Measured: case 1 completes in exactly 3 one-way delays (vs PBFT's 5+),\n"
            "case 2 engages exactly when a replica is silent and costs the extra\n"
            "certificate round; messages stay linear vs PBFT's quadratic."),
    "E11": ("HotStuff",
            "Paper: 7 phases, O(N) via threshold-signature QCs, leader rotation,\n"
            "pipelining. Measured: 8 one-way exchanges including the request (the\n"
            "7 the paper counts + the client hop); message growth fits O(N) while\n"
            "PBFT fits O(N^2); the chained pipeline decides 12 commands in <= 18\n"
            "views (one block per view at steady state)."),
    "E12": ("Trusted components",
            "Paper: MinBFT needs 2f+1 replicas and 2 phases ('same as Paxos');\n"
            "CheapBFT runs f+1 actives and switches to MinBFT on a PANIC.\n"
            "Measured: replica counts 4 (PBFT) vs 3 (MinBFT/CheapBFT); message\n"
            "costs CheapTiny < MinBFT < PBFT; an active-replica crash triggers\n"
            "client PANIC -> CheapSwitch -> MinBFT, finishing the workload\n"
            "consistently."),
    "E13": ("Hybrid fault models",
            "Paper: UpRight's 3m+2c+1 / 2m+c+1 / m+1 arithmetic; SeeMoRe's three\n"
            "modes (2 or 3 phases, quorum 2m+c+1 or 2m+1, O(n) or O(n^2)); XFT is\n"
            "safe outside anarchy. Measured: UpRight lives at exactly (m, c) faults\n"
            "and stalls one crash beyond, staying safe; SeeMoRe's modes order\n"
            "1 < 2 < 3 in messages with the claimed phases/quorums; XFT diverges\n"
            "under Byzantine-leader + partition (anarchy) and is provably\n"
            "safe in the no-partition control."),
    "E14": ("Circumventing FLP (randomization)",
            "Paper: sacrifice determinism - randomized consensus terminates.\n"
            "Measured: 90/90 adversarially-delayed Ben-Or runs decide with\n"
            "agreement intact; unanimous inputs finish in round 1, split inputs\n"
            "need the coin (median 2-3 rounds)."),
    "E15": ("Bitcoin PoW",
            "Paper: the mining-details figures, forks, difficulty, halving,\n"
            "centralization, weak finality, selfish mining. Measured: real SHA-256\n"
            "nonce searches track the target; fork rate falls ~8x as the block\n"
            "interval outgrows propagation; the retarget responds (clamped 4x)\n"
            "when hashrate doubles; rewards follow 50/25/12.5 ('currently');\n"
            "an 81%-hash pool wins ~81% of blocks; double-spend success matches\n"
            "Nakamoto's (q/p)^k; selfish mining turns profitable above ~1/3."),
    "E16": ("Proof of Stake",
            "Paper: a p-fraction stakeholder wins ~p of blocks; coin-age selection\n"
            "gates at 30 days, peaks at 90, resets on use. Measured: block shares\n"
            "within 6 points of stake shares for both selectors; the weight curve\n"
            "is exactly 0 before day 30, linear to 90, flat after."),
    "E17": ("Tendermint (extension)",
            "Paper: 'Tendermint has its own consensus protocol - extends PBFT with\n"
            "leader rotation.' Measured: healthy validators commit every height in\n"
            "one round with all-to-all (O(N^2)) votes; a silent proposer costs\n"
            "exactly one extra round at the heights the rotation assigns it; the\n"
            "decided blocks are hash-linked and identical on every validator."),
    "E18": ("Spanner-style transactions (extension)",
            "Paper: the Google Spanner figure - transactions (2PL+2PC) in the\n"
            "execution tier over Paxos-replicated partitions in the storage tier.\n"
            "Measured: per-transaction messages grow with the number of groups a\n"
            "transaction touches (the 2PC fan-out times each group's replication\n"
            "cost); no-wait locking + randomized retry serializes contended\n"
            "transactions exactly once; a crashed replica in every group is\n"
            "invisible to the transaction layer."),
    "E19": ("Ablations (extension)",
            "Design-choice knobs isolated one at a time: zero backoff jitter IS\n"
            "the livelock and any meaningful jitter restores liveness; frequent\n"
            "PBFT checkpoints trade checkpoint traffic for a small retained log;\n"
            "the PoW fork rate falls monotonically as the block interval outgrows\n"
            "propagation delay - the reason Bitcoin picked minutes."),
    "E22": ("Pessimistic vs optimistic replication (extension)",
            "The taxonomy's third aspect on one workload: consensus-backed\n"
            "writes cost ~3x the messages of Dynamo quorum writes; R+W > N\n"
            "eliminates staleness while R+W <= N shows it under a lossy\n"
            "replica; under a partition the CP store's minority side blocks\n"
            "while the AP store keeps accepting and converges after the heal\n"
            "- the CAP trade the DynamoDB slide is selling."),
    "E21": ("The price of tolerance (extension)",
            "One workload up the fault-model ladder: crash consensus runs on\n"
            "2f+1 replicas with the leanest message bills; trusted hardware\n"
            "(MinBFT/CheapBFT) buys Byzantine coverage at crash-like prices; full\n"
            "BFT pays 3f+1 replicas, with Zyzzyva's speculation cheapest in\n"
            "latency, PBFT quadratic in messages, and HotStuff trading latency\n"
            "(7 phases) for linearity."),
    "E23": ("Simulator throughput (harness)",
            "Not a paper figure: wall-clock events/sec and messages/sec the\n"
            "simulation substrate sustains with telemetry enabled, across\n"
            "protocols and cluster sizes. Recorded so hot-path regressions are\n"
            "visible in the bench trajectory; rates are machine-dependent and\n"
            "not asserted."),
    "E24": ("Conformance-monitor overhead (harness)",
            "Not a paper figure: the cost of watching. The same protocol run\n"
            "with the streaming conformance monitors off (the default: no\n"
            "tracer, no per-event work at all) versus on (tracer + full\n"
            "monitor battery). Monitors-off throughput is the number the\n"
            "suite's perf work defends; the on/off ratio bounds what 'repro\n"
            "check' and monitored tests pay for their verdicts.\n"
            "\n"
            "The subscription-dispatch rebuild cut the monitored-pbft ratio\n"
            "from 3.4x to ~1.9x (multi-paxos ~1.4x). Top-5 profile frames\n"
            "(tottime, 'repro profile pbft --monitors') before: tracer._emit\n"
            "(eager TraceEvent per event), tracer._message_detail (eager\n"
            "stringify), monitor.base observe (every event to every\n"
            "monitor), network.send, simulator.run. After: network.send,\n"
            "tracer.on_deliver, tracer.on_send, simulator.run,\n"
            "network._deliver_traced - the observability frames dropped ~3x\n"
            "and the transport itself is back on top. Subscriptions are now\n"
            "compiled into mtype-indexed tables, so pbft's ack-heavy deliver\n"
            "stream routes each event with one dict probe instead of testing\n"
            "every monitor's filter. Ring recording alone costs ~1.4x in pure\n"
            "Python, which floors the ratio; the CI perf gate\n"
            "(repro.telemetry.perfgate) caps it at 2.5x."),
    "E25": ("Sharded fleet scaling (extension)",
            "The modern-deployment shape: many consensus groups behind one\n"
            "keyspace. A ShardedCluster scales from 2x3 to 48x5 = 240 simulated\n"
            "nodes on one virtual clock; single-shard transactions take the\n"
            "two-round fast path while cross-shard ones pay 2PC-over-consensus\n"
            "with a replicated commit decision (Gray & Lamport). Commit density\n"
            "(committed transactions per unit of simulated time - dimensionless,\n"
            "not wall TPS) stays workload-bound - not node-count-bound - as the\n"
            "fleet grows, which is the scaling argument for sharding itself."),
    "E26": ("Parallel-scaling: fleet events/sec vs workers (extension)",
            "Not a paper figure: the conservative parallel engine\n"
            "(src/repro/parallel/) runs one sharded fleet partitioned across\n"
            "K worker processes with epoch barriers at the minimum cross-group\n"
            "link latency. The contract is that K changes nothing but speed -\n"
            "merged traces, stats and monitor verdicts are byte-identical at\n"
            "every worker count (golden-enforced) - so this experiment records\n"
            "only the speed half: events/sec over the critical path (per epoch,\n"
            "the slowest worker's CPU plus the merge CPU), the per-worker\n"
            "normalized rate whose decay is barrier + imbalance overhead, and\n"
            "wall time for transparency. The CI perf gate holds both rate\n"
            "families to the recorded trajectory."),
    "E27": ("Span-derivation overhead: the lazy span layer's price (extension)",
            "Not a paper figure: src/repro/obs/ derives per-request spans with\n"
            "critical-path latency attribution purely from the recorded trace,\n"
            "after the run. This experiment prices that laziness: run wall vs\n"
            "trace materialization (which any trace query pays) vs the span\n"
            "derivation proper, with overhead x = (run + derive) / run measured\n"
            "at ~1.2x and capped by the CI perf gate at 2.5x. A hot path that\n"
            "never asks for spans pays only the tracer's ring-buffer appends -\n"
            "span analysis is free until queried, like every observability\n"
            "layer in this repo."),
    "E28": ("Saturation knees: offered load vs tail latency (extension)",
            "Not a paper figure: the open-loop load engine (src/repro/load/)\n"
            "sweeps Poisson offered load against each protocol over\n"
            "finite-ingress replicas (QueuedDelayModel serves one message per\n"
            "0.05 virtual-time units) and finds the saturation knee - the\n"
            "highest rate absorbed before goodput collapses below 90% of\n"
            "offered or p99 blows past 3x the light-load baseline. Latency is\n"
            "measured from intended arrival time (coordinated-omission-safe),\n"
            "so queueing delay cannot hide behind a slow client. The measured\n"
            "ordering is the paper's complexity table as a latency cliff:\n"
            "leader-based multi-paxos/raft ingest ~3 messages per request and\n"
            "knee around 6 req/unit, while PBFT's all-to-all phases ingest\n"
            "~3n per replica and knee an order of magnitude lower (~1).\n"
            "Conformance monitors stay green below every knee."),
    "E20": ("Circumventing FLP (the oracle)",
            "Paper: 'adding oracle (failure detector)'. Measured: Chandra-Toueg\n"
            "rotating-coordinator consensus decides in 12/12 runs with a heartbeat\n"
            "detector - through coordinator crashes and heavy asynchrony - while\n"
            "an always-wrong oracle costs liveness but never agreement: safety is\n"
            "oracle-independent, exactly the division FLP allows."),
}

#: Which benchmark file regenerates each experiment's artifact — the
#: hint ``python -m repro experiments`` prints when artifacts are
#: missing from ``benchmarks/results/``.
EXPERIMENT_BENCHES = {
    "E1": "test_bench_property_table.py",
    "E2": "test_bench_paxos.py",
    "E3": "test_bench_livelock.py",
    "E4": "test_bench_multipaxos.py",
    "E5": "test_bench_fast_paxos.py",
    "E6": "test_bench_flexible_paxos.py",
    "E7": "test_bench_commit.py",
    "E8": "test_bench_psl_bound.py",
    "E9": "test_bench_pbft.py",
    "E10": "test_bench_zyzzyva.py",
    "E11": "test_bench_hotstuff.py",
    "E12": "test_bench_trusted.py",
    "E13": "test_bench_hybrid.py",
    "E14": "test_bench_benor.py",
    "E15": "test_bench_pow.py",
    "E16": "test_bench_pos.py",
    "E17": "test_bench_tendermint.py",
    "E18": "test_bench_dtxn.py",
    "E19": "test_bench_ablations.py",
    "E20": "test_bench_failure_detector.py",
    "E21": "test_bench_price_of_tolerance.py",
    "E22": "test_bench_optimistic.py",
    "E23": "test_bench_throughput.py",
    "E24": "test_bench_throughput.py",
    "E25": "test_bench_shards.py",
    "E26": "test_bench_parallel.py",
    "E27": "test_bench_spans.py",
    "E28": "test_bench_loadtest.py",
}


def bench_file_for(experiment_id):
    """The ``benchmarks/`` file that regenerates ``experiment_id``."""
    return EXPERIMENT_BENCHES.get(experiment_id, "test_bench_*.py")


HEADER = """# EXPERIMENTS — paper vs measured

Every figure/table in the tutorial, regenerated by `pytest benchmarks/
--benchmark-only`.  Each section: what the paper claims, what this repo
measures, and the generated table (also in `benchmarks/results/`).
Absolute numbers are simulator-scale; the reproduced content is the
*shape* — who wins, by what factor, where the boundaries fall.
E17–E20 are extensions beyond the deck's headline figures (see
DESIGN.md's extension table).
"""


def collect_results(results_dir):
    """Result files keyed by experiment id, in numeric order."""
    results_dir = pathlib.Path(results_dir)
    files = {}
    for path in results_dir.glob("E*.txt"):
        match = re.match(r"(E\d+)", path.name)
        if match:
            files[match.group(1)] = path
    return dict(sorted(files.items(),
                       key=lambda item: int(item[0][1:])))


def generate_experiments_md(results_dir="benchmarks/results",
                            output="EXPERIMENTS.md"):
    """Assemble EXPERIMENTS.md; returns (path, number of experiments).

    Experiments without commentary get a placeholder note so new benches
    are never silently dropped from the record.
    """
    sections = [HEADER]
    files = collect_results(results_dir)
    for eid, path in files.items():
        title, note = EXPERIMENT_NOTES.get(
            eid, (path.stem, "(no commentary recorded yet)")
        )
        sections.append("## %s — %s\n\n%s\n\n```\n%s\n```\n"
                        % (eid, title, note, path.read_text().rstrip()))
    text = "\n".join(sections)
    out_path = pathlib.Path(output)
    out_path.write_text(text)
    return out_path, len(files)
