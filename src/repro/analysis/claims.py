"""The paper's claims as data — ground truth for the E-experiments.

``PAPER_TABLE`` is the comparison table assembled from the per-protocol
property boxes in the slides; the E1 bench prints it next to measured
values, and EXPERIMENTS.md records both.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperClaim:
    """One protocol row as the tutorial states it."""

    protocol: str
    failure_model: str
    nodes: str
    phases: str
    complexity: str
    #: Formula n(f) for the minimum cluster size, used by benches to
    #: instantiate the right cluster, or None when not f-parametric.
    nodes_of_f: object = None


PAPER_TABLE = [
    PaperClaim("paxos", "crash", "2f+1", "2", "O(N)", lambda f: 2 * f + 1),
    PaperClaim("multi-paxos", "crash", "2f+1", "2", "O(N)",
               lambda f: 2 * f + 1),
    PaperClaim("raft", "crash", "2f+1", "2", "O(N)", lambda f: 2 * f + 1),
    PaperClaim("fast-paxos", "crash", "3f+1", "1 or 3", "O(N)",
               lambda f: 3 * f + 1),
    PaperClaim("flexible-paxos", "crash", "|Q1|+|Q2|>n", "2", "O(N)", None),
    PaperClaim("2pc", "crash", "n", "2", "O(N)", None),
    PaperClaim("3pc", "crash", "n", "3", "O(N)", None),
    PaperClaim("pbft", "byzantine", "3f+1", "3", "O(N^2)",
               lambda f: 3 * f + 1),
    PaperClaim("zyzzyva", "byzantine", "3f+1", "1 or 2", "O(N)",
               lambda f: 3 * f + 1),
    PaperClaim("hotstuff", "byzantine", "3f+1", "7", "O(N)",
               lambda f: 3 * f + 1),
    PaperClaim("minbft", "hybrid", "2f+1", "2", "O(N)", lambda f: 2 * f + 1),
    PaperClaim("cheapbft", "hybrid", "f+1 active / 2f+1", "2", "O(N)",
               lambda f: 2 * f + 1),
    PaperClaim("upright", "hybrid", "3m+2c+1", "3", "O(N^2)", None),
    PaperClaim("seemore", "hybrid", "3m+2c+1", "2 or 3", "O(N)/O(N^2)", None),
    PaperClaim("xft", "crash+non-crash", "2f+1", "2", "O(N)",
               lambda f: 2 * f + 1),
    PaperClaim("ben-or", "crash", "2f+1", "2 per round", "O(N^2)",
               lambda f: 2 * f + 1),
    PaperClaim("interactive-consistency", "byzantine", "3f+1", "2", "O(N^2)",
               lambda f: 3 * f + 1),
    PaperClaim("pow", "byzantine", "unknown", "1", "O(N)", None),
    PaperClaim("tendermint", "byzantine", "3f+1", "3 per round", "O(N^2)",
               lambda f: 3 * f + 1),
    PaperClaim("chandra-toueg", "crash", "2f+1", "4 per round", "O(N)",
               lambda f: 2 * f + 1),
]


def claim_for(protocol):
    for claim in PAPER_TABLE:
        if claim.protocol == protocol:
            return claim
    raise KeyError(protocol)


#: Classical lower bounds the tutorial cites, checked by property tests.
LOWER_BOUNDS = {
    "byzantine_agreement_nodes": lambda f: 3 * f + 1,   # Pease-Shostak-Lamport
    "crash_consensus_nodes": lambda f: 2 * f + 1,
    "hybrid_nodes": lambda m, c: 3 * m + 2 * c + 1,     # UpRight
    "bft_quorum": lambda f: 2 * f + 1,
    "bft_quorum_intersection": lambda f: f + 1,
    "hybrid_quorum": lambda m, c: 2 * m + c + 1,
    "hybrid_quorum_intersection": lambda m, c: m + 1,
}
