"""Plain-text table rendering for experiment output.

Benches print their rows through :func:`render_table` so EXPERIMENTS.md
snippets and terminal output share one format.
"""


def render_table(rows, columns=None, title=None):
    """Render a list of dicts as an aligned ASCII table.

    Parameters
    ----------
    rows:
        List of dicts (all sharing keys).
    columns:
        Column order; defaults to the first row's key order.
    title:
        Optional heading line.
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {col: len(str(col)) for col in columns}
    for row in rows:
        for col in columns:
            widths[col] = max(widths[col], len(_fmt(row.get(col))))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append(
            " | ".join(_fmt(row.get(col)).ljust(widths[col]) for col in columns)
        )
    return "\n".join(lines)


def _fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return "%.3f" % value
    return str(value)


def comparison_table():
    """The registered protocol property boxes as table rows (E1)."""
    from ..core.registry import all_profiles
    return [profile.as_row() for profile in all_profiles()]
