"""Sharded multi-group SMR: many consensus groups, one keyspace.

The package that turns "a replicated log" into "a database": a
partitioned keyspace routed by a live :class:`ShardMap`, one consensus
group per shard (Multi-Paxos or Raft, even mixed), cross-shard
transactions via 2PC-over-consensus with a single-shard fast path, and
live shard splitting under traffic.  See :class:`ShardedCluster` for
the one-stop entry point and ``DESIGN.md`` ("Sharding") for the
protocol walk-through.
"""

from .cluster import ShardedCluster
from .group import PROTOCOL_ADAPTERS, ShardGroup
from .keyspace import (
    HashPartitioner,
    RangePartitioner,
    ShardMap,
    polynomial_hash,
)
from .rebalance import SplitOrchestrator
from .state import ShardKVStateMachine
from .txn import ShardTxnCoordinator

__all__ = [
    "HashPartitioner",
    "PROTOCOL_ADAPTERS",
    "RangePartitioner",
    "ShardGroup",
    "ShardKVStateMachine",
    "ShardMap",
    "ShardTxnCoordinator",
    "ShardedCluster",
    "SplitOrchestrator",
    "polynomial_hash",
]
