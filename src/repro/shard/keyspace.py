"""Sharded keyspace: partitioners and the routing table.

A sharded deployment needs one answer fast and everywhere: *which shard
owns this key?*  Two classic answers are implemented —

* **hash partitioning** (:class:`HashPartitioner`): a deterministic
  polynomial hash modulo the shard count.  Spreads any workload evenly
  but pins the shard count forever — there is no cheap way to move a
  *contiguous* slice of keys, so hash maps don't split.
* **range partitioning** (:class:`RangePartitioner`): sorted split
  points carve the key space into contiguous half-open buckets
  ``[lo, hi)``.  Ranges cluster related keys and — the point — support
  **splitting**: one bucket divides at a chosen key and only that
  bucket's upper slice moves.

:class:`ShardMap` is the routing table handed to coordinators: it binds
bucket indexes to shard ids, carries a monotonically increasing
``epoch`` (bumped on every reconfiguration, so any cached routing can be
detected stale), and performs the split cutover atomically from the
simulation's point of view — one call flips the map.

Partitioners are immutable; :meth:`RangePartitioner.split` returns a new
partitioner and :meth:`ShardMap.split` swaps it in.  That keeps "the
routing state at epoch e" a value, not a mutation history.
"""

import bisect


def polynomial_hash(key):
    """The repo-wide deterministic string hash (stable across runs and
    Python processes — unlike built-in ``hash``)."""
    digest = 0
    for char in str(key):
        digest = (digest * 131 + ord(char)) % (1 << 30)
    return digest


class HashPartitioner:
    """Static hash partitioning over ``n_buckets`` buckets."""

    supports_split = False

    def __init__(self, n_buckets):
        if n_buckets < 1:
            raise ValueError("need at least one bucket")
        self.n_buckets = n_buckets

    def index_of(self, key):
        return polynomial_hash(key) % self.n_buckets

    def bounds(self, index):
        """Hash buckets are not contiguous key ranges."""
        raise ValueError("hash partitioning has no key-range bounds")

    def split(self, index, at):
        raise ValueError(
            "hash partitioning cannot split: bucket membership is "
            "h(key) %% n, not a contiguous range — use range partitioning")

    def __repr__(self):
        return "HashPartitioner(%d)" % self.n_buckets


class RangePartitioner:
    """Contiguous half-open buckets defined by sorted ``boundaries``.

    ``m`` boundaries make ``m + 1`` buckets: bucket 0 is
    ``(-inf, b[0])``, bucket ``i`` is ``[b[i-1], b[i])``, the last is
    ``[b[m-1], +inf)``.  A key equal to a boundary belongs to the bucket
    *above* it.
    """

    supports_split = True

    def __init__(self, boundaries):
        boundaries = tuple(boundaries)
        if list(boundaries) != sorted(set(boundaries)):
            raise ValueError("boundaries must be strictly increasing")
        self.boundaries = boundaries
        self.n_buckets = len(boundaries) + 1

    def index_of(self, key):
        return bisect.bisect_right(self.boundaries, key)

    def bounds(self, index):
        """``(lo, hi)`` of bucket ``index``; ``None`` marks an open end."""
        if not 0 <= index < self.n_buckets:
            raise IndexError(index)
        lo = self.boundaries[index - 1] if index > 0 else None
        hi = self.boundaries[index] if index < len(self.boundaries) else None
        return (lo, hi)

    def split(self, index, at):
        """A new partitioner with bucket ``index`` divided at ``at``:
        the lower slice ``[lo, at)`` keeps the index, the upper slice
        ``[at, hi)`` becomes bucket ``index + 1``."""
        lo, hi = self.bounds(index)
        if (lo is not None and at <= lo) or (hi is not None and at >= hi):
            raise ValueError(
                "split key %r outside bucket %d's range [%r, %r)"
                % (at, index, lo, hi))
        boundaries = list(self.boundaries)
        boundaries.insert(index, at)
        return RangePartitioner(boundaries)

    def __repr__(self):
        return "RangePartitioner(%r)" % (self.boundaries,)


class ShardMap:
    """The routing table: key -> shard id, reconfigurable under traffic.

    Binds a partitioner's bucket indexes to stable shard ids (bucket
    order changes on split; ids never do).  ``epoch`` increments on
    every reconfiguration — coordinators that recompute routing per
    attempt pick up the new map automatically, and anything that cached
    a route can compare epochs to detect staleness.
    """

    def __init__(self, partitioner, shard_ids=None):
        self.partitioner = partitioner
        if shard_ids is None:
            shard_ids = ["s%d" % i for i in range(partitioner.n_buckets)]
        if len(shard_ids) != partitioner.n_buckets:
            raise ValueError("need one shard id per bucket")
        self.shards = list(shard_ids)
        self.epoch = 0

    @property
    def shard_ids(self):
        return tuple(self.shards)

    def shard_of(self, key):
        return self.shards[self.partitioner.index_of(key)]

    def bounds(self, sid):
        """Key-range ``(lo, hi)`` owned by shard ``sid`` (range maps only)."""
        return self.partitioner.bounds(self.shards.index(sid))

    def split(self, sid, at, new_sid):
        """Cut shard ``sid``'s bucket at key ``at``: ``sid`` keeps
        ``[lo, at)``, ``new_sid`` takes ``[at, hi)``.  Bumps ``epoch``.
        This is the *routing* cutover only — data movement is the
        rebalancer's job and must complete before calling this.
        """
        if new_sid in self.shards:
            raise ValueError("shard id %r already routed" % (new_sid,))
        index = self.shards.index(sid)
        self.partitioner = self.partitioner.split(index, at)
        self.shards.insert(index + 1, new_sid)
        self.epoch += 1
        return self

    def __repr__(self):
        return "ShardMap(epoch=%d, %s)" % (self.epoch,
                                           "/".join(self.shards))
