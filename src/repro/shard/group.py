"""One shard = one consensus group, protocol-agnostic.

:class:`ShardGroup` wraps a :class:`~repro.core.cluster.ClusterGroup`
(the namespace ``<gid>/<local>`` on the shared simulator/network) with
the protocol-specific knowledge a shard consumer needs: how to build a
replica, how to phrase a client request to it, and how to recognise its
leader.  Multi-Paxos and Raft groups expose the identical surface, so a
fleet can mix them — the point of the SMR abstraction the paper keeps
returning to: *any* log-replication protocol underneath, same shard on
top.
"""

from ..protocols.multipaxos import ClientRequest, MultiPaxosReplica
from ..protocols.raft import RaftClientRequest, RaftNode, Role
from ..smr import check_log_consistency, check_state_machines
from .state import ShardKVStateMachine

#: protocol name -> (replica factory, client-request class, is-leader).
PROTOCOL_ADAPTERS = {
    "multi-paxos": (MultiPaxosReplica, ClientRequest,
                    lambda node: node.is_leader),
    "raft": (RaftNode, RaftClientRequest,
             lambda node: node.role is Role.LEADER),
}


class ShardGroup:
    """A replica group owning one shard of the keyspace.

    Parameters
    ----------
    cluster:
        The shared :class:`~repro.core.Cluster` (fleet host).
    gid:
        Shard/group id; becomes the node-name namespace (``s0/r2``).
    n_replicas:
        Replication factor (2f+1 for f crash faults).
    protocol:
        ``"multi-paxos"`` or ``"raft"`` — see :data:`PROTOCOL_ADAPTERS`.
    """

    def __init__(self, cluster, gid, n_replicas, protocol="multi-paxos",
                 state_machine_factory=ShardKVStateMachine):
        if protocol not in PROTOCOL_ADAPTERS:
            raise ValueError("unknown shard protocol %r (choices: %s)"
                             % (protocol,
                                ", ".join(sorted(PROTOCOL_ADAPTERS))))
        self.cluster = cluster
        self.gid = str(gid)
        self.protocol = protocol
        factory, self._request_cls, self._is_leader = \
            PROTOCOL_ADAPTERS[protocol]
        self.group = cluster.group(self.gid)
        local_names = ["r%d" % i for i in range(n_replicas)]
        peers = [self.group.member(name) for name in local_names]
        self.replicas = self.group.add_nodes(
            factory, local_names, peers,
            state_machine_factory=state_machine_factory)

    # -- protocol surface ---------------------------------------------------

    @property
    def members(self):
        """Fleet-wide replica names (what coordinators address)."""
        return tuple(replica.name for replica in self.replicas)

    def request(self, command, request_id):
        """A client-request message replicating ``command`` here."""
        return self._request_cls(command, request_id)

    def leader(self):
        """The live leader replica, or ``None`` mid-election."""
        for replica in self.replicas:
            if not replica.crashed and self._is_leader(replica):
                return replica
        return None

    # -- lifecycle ----------------------------------------------------------

    def start(self):
        self.group.start_all()
        return self

    def attach_monitors(self, f=0):
        """This protocol's monitor battery, scoped to this group."""
        return self.group.attach_monitors(self.protocol, f=f)

    # -- fault injection ----------------------------------------------------

    def crash_leader(self):
        leader = self.leader()
        if leader is not None:
            leader.crash()
        return leader.name if leader is not None else None

    def crash_follower(self):
        for replica in self.replicas:
            if not replica.crashed and not self._is_leader(replica):
                replica.crash()
                return replica.name
        return None

    def crash_all(self):
        """Kill the whole group — the shard goes dark."""
        crashed = []
        for replica in self.replicas:
            if not replica.crashed:
                replica.crash()
                crashed.append(replica.name)
        return crashed

    # -- introspection ------------------------------------------------------

    def machines(self, live_only=True):
        return [replica.state_machine for replica in self.replicas
                if not (live_only and replica.crashed)]

    def committed_logs(self):
        return [replica.committed_log() for replica in self.replicas]

    def check_consistency(self):
        """Replicas agree on the log and on state at equal progress."""
        if not check_log_consistency(self.committed_logs()):
            return False
        return check_state_machines(self.machines())

    def __repr__(self):
        return "ShardGroup(%r, %s, %d replicas)" % (
            self.gid, self.protocol, len(self.replicas))
