"""ShardedCluster — a fleet of consensus groups behind one keyspace.

The paper's modern systems (Spanner and its descendants) are not "a
Paxos group"; they are *hundreds* of them, each owning a slice of the
keyspace, stitched together by a routing table and a transaction layer.
:class:`ShardedCluster` is that architecture on one simulator:

* N shards × R replicas, every node on one shared
  :class:`~repro.core.Cluster` (one virtual clock, one network, one
  trace) — group namespaces (``s3/r1``) keep the fleet legible;
* hash- or range-partitioned keyspace behind a live
  :class:`~repro.shard.keyspace.ShardMap`;
* per-shard consensus via Multi-Paxos or Raft (or a mix — shard by
  shard, the SMR abstraction doesn't care);
* cross-shard transactions through 2PC-over-consensus
  (:class:`~repro.shard.txn.ShardTxnCoordinator`), single-shard ones
  through the two-round fast path;
* live splits under traffic via the
  :class:`~repro.shard.rebalance.SplitOrchestrator`;
* optional per-shard conformance monitors, each scoped to its group so
  same-protocol shards never collide in one trace.
"""

import random

from ..core.cluster import Cluster
from ..core.exceptions import LivenessFailure
from ..dtxn.coordinator import Transaction
from ..monitor import NULL_HUB
from .group import ShardGroup
from .keyspace import HashPartitioner, RangePartitioner, ShardMap
from .rebalance import SplitOrchestrator
from .txn import ShardTxnCoordinator

#: Width of generated key names — fixed so lexicographic order equals
#: numeric order, which is what makes range partitioning intuitive.
KEY_WIDTH = 6


class ShardedCluster:
    """A sharded, replicated, transactional deployment.

    Parameters
    ----------
    n_shards:
        Number of consensus groups the keyspace starts divided across.
    replicas:
        Replication factor per shard (2f+1 for f crash faults).
    protocol:
        ``"multi-paxos"``, ``"raft"``, or ``"mixed"`` (alternating —
        even shards Multi-Paxos, odd shards Raft).
    partitioning:
        ``"hash"`` (static, uniform) or ``"range"`` (contiguous,
        splittable); range boundaries are placed evenly over the
        ``key_space`` generated keys.
    key_space:
        Size of the generated key universe (``key(0) .. key(n-1)``);
        workloads and range boundaries draw from it.
    cluster:
        An existing :class:`~repro.core.Cluster` to build on (the CLI
        passes its traced/instrumented one); default builds a fresh one
        from ``seed``/``monitors``.
    """

    def __init__(self, n_shards=2, replicas=3, seed=0,
                 protocol="multi-paxos", partitioning="hash",
                 key_space=256, monitors=False, cluster=None,
                 delivery=None, op_timeout=3000.0):
        if cluster is None:
            cluster = Cluster(seed=seed, delivery=delivery,
                              monitors=monitors)
        self.cluster = cluster
        self.seed = getattr(cluster.sim, "seed", seed)
        self.n_replicas = replicas
        self.protocol = protocol
        self.partitioning = partitioning
        self.key_space = key_space
        self.op_timeout = op_timeout
        self.shard_map = self._build_map(n_shards, partitioning, key_space)
        self.shard_groups = {}
        self._shard_counter = 0
        for _ in range(n_shards):
            self._build_shard()
        self.coordinator = self.cluster.add_node(
            ShardTxnCoordinator, "txn-coord", self.shard_map,
            self.shard_groups.values())
        self.rebalancer = self.cluster.add_node(
            SplitOrchestrator, "rebalancer", self)
        self._txid_counter = 0
        self.cluster.start_all()
        # Let every group's leader election finish before serving (Raft
        # elections are timeout-driven, so mixed fleets need longer).
        settle = 25.0 if self._uses_raft() else 10.0
        self.cluster.sim.run_for(settle)

    # -- construction helpers -----------------------------------------------

    def _build_map(self, n_shards, partitioning, key_space):
        if partitioning == "hash":
            return ShardMap(HashPartitioner(n_shards))
        if partitioning == "range":
            boundaries = [self.key(i * key_space // n_shards)
                          for i in range(1, n_shards)]
            return ShardMap(RangePartitioner(boundaries))
        raise ValueError("unknown partitioning %r "
                         "(choices: hash, range)" % (partitioning,))

    def _protocol_for(self, index):
        if self.protocol == "mixed":
            return "multi-paxos" if index % 2 == 0 else "raft"
        return self.protocol

    def _build_shard(self):
        index = self._shard_counter
        self._shard_counter += 1
        gid = "s%d" % index
        group = ShardGroup(self.cluster, gid, self.n_replicas,
                           protocol=self._protocol_for(index))
        self.shard_groups[gid] = group
        if self.cluster.monitors is not NULL_HUB:
            group.attach_monitors(f=(self.n_replicas - 1) // 2)
        return group

    def spawn_shard(self):
        """Build, start and register a brand-new shard group mid-run
        (the rebalancer calls this when a split needs a destination).
        Returns the new shard id — not yet routed to; the caller flips
        the :class:`ShardMap` when the data is in place."""
        group = self._build_shard()
        group.start()
        self.coordinator.add_group(group)
        return group.gid

    def _uses_raft(self):
        return any(group.protocol == "raft"
                   for group in self.shard_groups.values())

    # -- keyspace -----------------------------------------------------------

    def key(self, i):
        """The ``i``-th generated key (zero-padded, order-preserving)."""
        return "k%0*d" % (KEY_WIDTH, i)

    def shard_of(self, key):
        return self.shard_map.shard_of(key)

    # -- transactions -------------------------------------------------------

    def run_transaction(self, keys, update, abort_if=None):
        """Drive one transaction to completion; returns it."""
        txn = self.submit(keys, update, abort_if=abort_if)
        deadline = self.now + self.op_timeout
        self.cluster.run_until(
            lambda: txn.outcome is not None and txn.state.value == "done",
            until=deadline)
        if txn.outcome is None:
            raise LivenessFailure("transaction %s did not finish" % txn.txid)
        return txn

    def submit(self, keys, update, abort_if=None):
        """Submit without driving (callers batch and run themselves)."""
        txid = "tx%d" % self._txid_counter
        self._txid_counter += 1
        txn = Transaction(txid, tuple(keys), update, abort_if=abort_if)
        self.coordinator.submit(txn)
        return txn

    def put(self, key, value):
        return self.run_transaction(
            (key,), lambda reads: {key: value}).outcome

    def get(self, key):
        return self.run_transaction((key,), lambda reads: {}).result[key]

    def transfer(self, src, dst, amount):
        def update(reads):
            return {src: (reads[src] or 0) - amount,
                    dst: (reads[dst] or 0) + amount}

        def overdraft(reads):
            return (reads[src] or 0) < amount

        return self.run_transaction((src, dst), update,
                                    abort_if=overdraft).outcome

    def total_of(self, keys):
        txn = self.run_transaction(tuple(keys), lambda reads: {})
        return sum(value or 0 for value in txn.result.values())

    # -- workload -----------------------------------------------------------

    def run_workload(self, txns=40, cross_ratio=0.25, batch=8, amount=5):
        """A deterministic transfer workload: ``txns`` transactions in
        waves of ``batch``, a ``cross_ratio`` fraction deliberately
        cross-shard.  Transfers conserve the keyspace total (no
        overdraft guard; balances may go negative), so
        ``total_of(all keys) == 0`` afterwards is a safety check.

        The returned summary's ``committed_per_vtime`` is committed
        transactions per unit of *simulated* time (the same units every
        message delay uses; in-shard hops are 0.5–1.5 units).  It is a
        dimensionless scheduling-density figure for comparing
        configurations under one delay model — not a wall-clock TPS and
        not comparable across delay models.
        """
        rng = random.Random(0x5AD0 + self.seed)
        started = self.now
        finished = []
        remaining = txns
        while remaining > 0:
            wave = []
            for _ in range(min(batch, remaining)):
                remaining -= 1
                wave.append(self._random_transfer(rng, cross_ratio, amount))
            deadline = self.now + self.op_timeout
            self.cluster.run_until(
                lambda: all(txn.outcome is not None for txn in wave),
                until=deadline)
            hung = [txn.txid for txn in wave if txn.outcome is None]
            if hung:
                raise LivenessFailure("workload transactions hung: %s"
                                      % ", ".join(hung))
            finished.extend(wave)
        duration = self.now - started
        committed = sum(1 for txn in finished
                        if txn.outcome == "committed")
        return {
            "txns": txns,
            "committed": committed,
            "aborted": txns - committed,
            "cross_shard": sum(
                1 for txn in finished
                if len({self.shard_of(k) for k in txn.keys}) > 1),
            "fast_commits": self.coordinator.fast_commits,
            "virtual_time": duration,
            "committed_per_vtime": committed / duration
            if duration > 0 else 0.0,
        }

    def _random_transfer(self, rng, cross_ratio, amount):
        src = self.key(rng.randrange(self.key_space))
        dst = src
        want_cross = rng.random() < cross_ratio
        for _ in range(64):
            candidate = self.key(rng.randrange(self.key_space))
            if candidate == src:
                continue
            crosses = self.shard_of(candidate) != self.shard_of(src)
            if crosses == want_cross:
                dst = candidate
                break
            if dst == src:
                dst = candidate  # fallback: any distinct key
        delta = rng.randrange(1, amount + 1)

        def update(reads, src=src, dst=dst, delta=delta):
            return {src: (reads[src] or 0) - delta,
                    dst: (reads[dst] or 0) + delta}

        return self.submit((src, dst), update)

    # -- splits -------------------------------------------------------------

    def split_shard(self, sid, at=None, settle=400.0):
        """Split shard ``sid`` live (range partitioning only); drives
        the simulation until the split completes.  ``at`` defaults to
        the midpoint of the shard's generated-key range."""
        if at is None:
            lo, hi = self.shard_map.bounds(sid)
            lo_i = int(lo[1:]) if lo is not None else 0
            hi_i = int(hi[1:]) if hi is not None else self.key_space
            at = self.key((lo_i + hi_i) // 2)
        split = self.rebalancer.split(sid, at)
        deadline = self.now + settle
        self.cluster.run_until(lambda: split["done"], until=deadline)
        if not split["done"]:
            raise LivenessFailure("split of %s at %r did not finish"
                                  % (sid, at))
        return split

    # -- fault injection ----------------------------------------------------

    def crash_shard(self, sid):
        """Crash every replica of one shard (the 2PC-participant-death
        scenario: in-flight cross-shard transactions must abort)."""
        return self.shard_groups[sid].crash_all()

    def crash_leader(self, sid):
        return self.shard_groups[sid].crash_leader()

    def crash_follower(self, sid):
        return self.shard_groups[sid].crash_follower()

    # -- verification -------------------------------------------------------

    def settle(self, duration=80.0):
        self.cluster.sim.run_for(duration)

    def check_consistency(self):
        """Every shard's replicas agree on log and state."""
        return all(group.check_consistency()
                   for group in self.shard_groups.values())

    def stats(self):
        """Deterministic run summary (same seed ⇒ same dict)."""
        coordinator = self.coordinator
        per_shard = {}
        for gid, group in sorted(self.shard_groups.items()):
            machines = group.machines(live_only=True) or \
                group.machines(live_only=False)
            best = max(machines, key=lambda sm: sm.ops_applied)
            per_shard[gid] = {
                "protocol": group.protocol,
                "ops_applied": best.ops_applied,
                "commits": best.commits,
                "fast_applies": best.fast_applies,
                "keys": len(best.data),
            }
        return {
            "shards": len(self.shard_groups),
            "replicas": self.n_replicas,
            "partitioning": self.partitioning,
            "epoch": self.shard_map.epoch,
            "commits": coordinator.commits,
            "aborts": coordinator.aborts,
            "fast_commits": coordinator.fast_commits,
            "decisions_replicated": coordinator.decisions_replicated,
            "timeout_aborts": coordinator.timeout_aborts,
            "conflicts": coordinator.conflicts_seen,
            "reroutes": coordinator.reroutes,
            "splits_done": self.rebalancer.splits_done,
            "per_shard": per_shard,
        }

    # -- passthroughs -------------------------------------------------------

    @property
    def now(self):
        return self.cluster.now

    @property
    def monitors(self):
        return self.cluster.monitors

    def __repr__(self):
        return "ShardedCluster(%d shards x %d replicas, %s, %s)" % (
            len(self.shard_groups), self.n_replicas, self.protocol,
            self.partitioning)
