"""The per-shard replicated state machine.

Extends the transactional KV machine (:mod:`repro.dtxn.state_machine`)
with the commands a *sharded* deployment needs in its log:

* ``txn_apply`` — the single-shard fast path: writes applied and locks
  released in **one** log entry, so a transaction touching one shard
  commits in two consensus rounds (lock, apply) instead of 2PC's four.
* ``txn_decide`` — the coordinator's commit decision as a replicated
  record (Gray & Lamport's *Consensus on Transaction Commit*): once a
  shard's log holds the decision, a coordinator crash cannot orphan the
  outcome.  Aborts are presumed and never recorded.
* ``shard_freeze`` / ``shard_install`` / ``shard_purge`` — the live
  split protocol's three replicated steps: drain-and-snapshot a key
  range, bulk-load it on the destination group, drop it at the source
  leaving a tombstone so stale routing is *told* it is stale.

Everything here is a log command, so every replica of a shard reaches
identical lock tables, staged writes, frozen ranges and tombstones —
the migration itself is crash-tolerant the same way transactions are.
"""

from ..dtxn.state_machine import TxnKVStateMachine


def _in_range(key, lo, hi):
    """Membership in half-open ``[lo, hi)``; ``None`` = open end."""
    return (lo is None or key >= lo) and (hi is None or key < hi)


class ShardKVStateMachine(TxnKVStateMachine):
    """Transactional KV machine plus fast-path commit, replicated
    commit decisions, and range-migration state.

    Extra commands (beyond :class:`TxnKVStateMachine`'s):

    * ``("txn_apply", txid, writes)`` → ``"applied"`` (writes applied,
      locks released, all in this one entry) or ``"no-locks"``.
    * ``("txn_decide", txid, verdict)`` → ``"decided"`` (records the
      coordinator's verdict durably in ``decisions``).
    * ``("shard_freeze", lo, hi)`` → ``("frozen", items)`` snapshotting
      ``[lo, hi)`` and refusing new locks there, or ``("busy", holder)``
      while any live transaction still holds a lock in the range (the
      *drain*: the rebalancer retries until holders finish).
    * ``("shard_install", items)`` → ``"installed"`` (bulk load).
    * ``("shard_purge", lo, hi)`` → ``"purged"`` (drops the frozen range
      and tombstones it: later locks there answer ``("moved", ...)``).

    ``txn_lock`` is extended to refuse frozen (``("frozen", range)``)
    and moved (``("moved", range)``) keys — coordinators treat both like
    conflicts and re-route on retry, which is what makes a split
    invisible to the workload beyond a latency blip.
    """

    def __init__(self):
        super().__init__()
        self.decisions = {}  # txid -> "commit"
        self.frozen = []  # list of (lo, hi) ranges being migrated out
        self.moved = []  # list of (lo, hi) tombstones (migrated away)
        self.fast_applies = 0

    # -- fast path ----------------------------------------------------------

    def _op_txn_apply(self, txid, writes):
        writes = dict(writes)
        for key in writes:
            if self.locks.get(key) != txid:
                return "no-locks"
        for key, value in writes.items():
            self.data[key] = value
        self._release(txid)
        self.commits += 1
        self.fast_applies += 1
        return "applied"

    # -- replicated commit decision -----------------------------------------

    def _op_txn_decide(self, txid, verdict):
        self.decisions[txid] = verdict
        return "decided"

    # -- migration ----------------------------------------------------------

    def _op_shard_freeze(self, lo, hi):
        holders = sorted({txid for key, txid in self.locks.items()
                          if _in_range(key, lo, hi)})
        if holders:
            return ("busy", holders[0])
        self.frozen.append((lo, hi))
        items = tuple(sorted((key, value) for key, value in self.data.items()
                             if _in_range(key, lo, hi)))
        return ("frozen", items)

    def _op_shard_install(self, items):
        for key, value in items:
            self.data[key] = value
        return "installed"

    def _op_shard_purge(self, lo, hi):
        for key in [k for k in self.data if _in_range(k, lo, hi)]:
            del self.data[key]
        if (lo, hi) in self.frozen:
            self.frozen.remove((lo, hi))
        self.moved.append((lo, hi))
        return "purged"

    # -- extended lock discipline -------------------------------------------

    def _blocked_range(self, keys):
        for key in keys:
            for lo, hi in self.moved:
                if _in_range(key, lo, hi):
                    return ("moved", (lo, hi))
            for lo, hi in self.frozen:
                if _in_range(key, lo, hi):
                    return ("frozen", (lo, hi))
        return None

    def _op_txn_lock(self, txid, keys):
        blocked = self._blocked_range(keys)
        if blocked is not None:
            return blocked
        return super()._op_txn_lock(txid, keys)
