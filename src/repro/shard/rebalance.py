"""Live shard splitting: drain, hand off, cut over — under traffic.

:class:`SplitOrchestrator` drives one range-shard split end to end
while transactions keep flowing:

1. **drain + freeze** — replicate ``("shard_freeze", at, hi)`` on the
   source group.  The state machine refuses while any transaction holds
   a lock in ``[at, hi)`` (``("busy", holder)``); the orchestrator
   backs off and retries, so in-flight holders finish naturally — the
   drain *is* the retry loop.  Once granted, the frozen range takes no
   new locks and the reply carries a consistent snapshot of its data.
2. **spawn + install** — a fresh consensus group is built mid-run (its
   own leader election and all) and the snapshot is replicated into it
   with ``("shard_install", items)``.
3. **cutover barrier** — only after the install is *in the destination
   group's log* does the routing flip: one ``ShardMap.split`` call bumps
   the epoch and re-homes ``[at, hi)``.  Coordinators recompute routes
   per attempt, so no invalidation traffic is needed.
4. **purge** — ``("shard_purge", at, hi)`` drops the moved data at the
   source and leaves a tombstone: any transaction still routed by the
   old map gets ``("moved", ...)`` and re-routes on retry.

Every step is a replicated log command on one group or the other, so a
minority of replica crashes at any point cannot lose migration state.
"""

import itertools

from ..core.node import Node


class SplitOrchestrator(Node):
    """Drives shard splits for a :class:`~repro.shard.ShardedCluster`.

    One split runs at a time; :attr:`last_split` records the finished
    one (``sid``, ``new_sid``, ``at``, ``moved_keys``, ``duration``).
    """

    RETRY_TIMEOUT = 15.0
    BUSY_BACKOFF = (2.0, 6.0)

    def __init__(self, sim, network, name, sharded):
        super().__init__(sim, network, name)
        self.sharded = sharded
        self._seq = itertools.count()
        self._pending = {}  # request_id -> (stage, gid, command)
        self._hint = {}  # gid -> replica currently addressed
        self.active = None
        self.last_split = None
        self.splits_done = 0

    # -- public -------------------------------------------------------------

    def split(self, sid, at):
        """Begin splitting shard ``sid`` at key ``at``; returns the
        in-progress split record (watch its ``"done"`` flag)."""
        if self.active is not None and not self.active["done"]:
            raise RuntimeError("a split is already in progress")
        _lo, hi = self.sharded.shard_map.bounds(sid)
        self.active = {
            "sid": sid, "at": at, "hi": hi, "new_sid": None,
            "moved_keys": 0, "started": self.sim.now, "done": False,
            "duration": None,
        }
        self._send(sid, ("shard_freeze", at, hi), "freeze")
        return self.active

    # -- request plumbing (same medicine as the txn coordinator) ------------

    def _send(self, gid, command, stage):
        request_id = "split-%s-%d" % (stage, next(self._seq))
        self._pending[request_id] = (stage, gid, command)
        group = self.sharded.shard_groups[gid]
        target = self._hint.setdefault(gid, group.members[0])
        self.send(target, group.request(command, request_id))
        self.set_timer(self.RETRY_TIMEOUT, self._retry, request_id)

    def _retry(self, request_id):
        entry = self._pending.get(request_id)
        if entry is None:
            return
        _stage, gid, command = entry
        group = self.sharded.shard_groups[gid]
        members = group.members
        current = self._hint[gid]
        self._hint[gid] = members[(members.index(current) + 1) % len(members)]
        self.send(self._hint[gid], group.request(command, request_id))
        self.set_timer(self.RETRY_TIMEOUT, self._retry, request_id)

    def handle_redirect(self, msg, src):
        entry = self._pending.get(msg.request_id)
        if entry is None:
            return
        _stage, gid, command = entry
        group = self.sharded.shard_groups[gid]
        if msg.leader_hint and msg.leader_hint in group.members:
            self._hint[gid] = msg.leader_hint
        self.send(self._hint[gid], group.request(command, msg.request_id))

    def handle_raftredirect(self, msg, src):
        self.handle_redirect(msg, src)

    def handle_clientreply(self, msg, src):
        entry = self._pending.pop(msg.request_id, None)
        if entry is None:
            return  # duplicate reply
        stage, gid, command = entry
        getattr(self, "_on_" + stage)(msg.result, gid, command)

    def handle_raftclientreply(self, msg, src):
        self.handle_clientreply(msg, src)

    # -- stage transitions --------------------------------------------------

    def _on_freeze(self, result, gid, command):
        if result[0] == "busy":
            # A transaction still holds locks in the range: back off a
            # randomized delay and re-ask — the drain loop.
            delay = self.rng.uniform(*self.BUSY_BACKOFF)
            self.set_timer(delay, self._send, gid, command, "freeze")
            return
        items = result[1]
        split = self.active
        split["moved_keys"] = len(items)
        split["new_sid"] = self.sharded.spawn_shard()
        self._send(split["new_sid"], ("shard_install", items), "install")

    def _on_install(self, result, gid, command):
        split = self.active
        # Cutover barrier: the data is in the destination's log — now,
        # and only now, flip the routing.
        self.sharded.shard_map.split(split["sid"], split["at"],
                                     split["new_sid"])
        self._send(split["sid"],
                   ("shard_purge", split["at"], split["hi"]), "purge")

    def _on_purge(self, result, gid, command):
        split = self.active
        split["done"] = True
        split["duration"] = self.sim.now - split["started"]
        self.last_split = split
        self.splits_done += 1
