"""Cross-shard transactions: 2PC layered over per-shard consensus.

:class:`ShardTxnCoordinator` extends the dtxn coordinator
(:mod:`repro.dtxn.coordinator`) with everything the sharded fleet adds:

* **routing through a live :class:`~repro.shard.keyspace.ShardMap`** —
  the shard of each key is recomputed at every round/attempt, so a
  split's routing cutover is picked up without any invalidation
  protocol.  A key's route *cannot* change while its locks are held
  (``shard_freeze`` drains lock holders first), which is the invariant
  making per-attempt recomputation sufficient.
* **the single-shard fast path** — a transaction whose keys all route
  to one shard skips 2PC entirely: lock round, then one ``txn_apply``
  entry applying writes and releasing locks together.  Two consensus
  rounds instead of four; most traffic in a well-partitioned workload.
* **replicated commit decisions** — before the commit round, the
  coordinator replicates ``("txn_decide", txid, "commit")`` in the
  lowest-numbered participant's log (Gray & Lamport: the decision *is*
  a consensus value).  Aborts are presumed, so only commits pay this.
* **mixed-protocol participants** — the per-group ``make_request`` hook
  phrases requests for whatever protocol each shard group runs, and the
  Raft reply/redirect handlers alias the Multi-Paxos ones (the message
  shapes are field-compatible by design).
* **migration-aware retries** — ``("frozen", ...)`` and
  ``("moved", ...)`` lock answers are treated like conflicts: abort,
  back off, re-route.  A stale route is a retriable event, not an
  error.
"""

from ..dtxn.coordinator import Transaction, TxnCoordinator, TxnState

__all__ = ["ShardTxnCoordinator", "Transaction"]


class ShardTxnCoordinator(TxnCoordinator):
    """2PC-over-consensus coordinator for a :class:`ShardMap` fleet.

    Parameters
    ----------
    shard_map:
        The live routing table; consulted afresh every attempt.
    shard_groups:
        Iterable of :class:`~repro.shard.group.ShardGroup`; more may
        join later via :meth:`add_group` (splits spawn shards mid-run).
    """

    def __init__(self, sim, network, name, shard_map, shard_groups,
                 **kwargs):
        shard_groups = list(shard_groups)
        groups = {group.gid: list(group.members) for group in shard_groups}
        super().__init__(sim, network, name, groups, shard_map.shard_of,
                         **kwargs)
        self.shard_map = shard_map
        self._request_of = {group.gid: group.request
                            for group in shard_groups}
        self.fast_commits = 0
        self.decisions_replicated = 0
        self.reroutes = 0

    def add_group(self, group):
        """Register a shard group created after construction (splits)."""
        self.groups[group.gid] = list(group.members)
        self.leader_hint[group.gid] = group.members[0]
        self._request_of[group.gid] = group.request

    def make_request(self, gid, command, request_id):
        return self._request_of[gid](command, request_id)

    # Raft replies/redirects carry the same fields as Multi-Paxos ones;
    # dispatch is by mtype, so the aliases make mixed fleets transparent.
    def handle_raftclientreply(self, msg, src):
        self.handle_clientreply(msg, src)

    def handle_raftredirect(self, msg, src):
        self.handle_redirect(msg, src)

    # -- round transitions --------------------------------------------------

    def _round_complete(self, txn, kind, replies):
        if kind == "txn_lock":
            self._locks_answered(txn, replies)
        elif kind == "txn_apply":
            if all(reply == "applied" for reply in replies.values()):
                self.fast_commits += 1
                self._finish(txn, "committed")
            else:
                self._abort_then_retry(txn, replies)
        elif kind == "txn_prepare":
            if all(reply == "prepared" for reply in replies.values()):
                # Replicate the commit decision before acting on it: the
                # lowest participant's log is the decision's home.
                decider = min(self.groups_of(txn))
                txn.state = TxnState.COMMITTING
                self._start_round(txn, "txn_decide", {
                    decider: ("txn_decide", txn.txid, "commit")})
            else:
                self._abort_then_retry(txn, replies)
        elif kind == "txn_decide":
            self.decisions_replicated += 1
            self._start_round(txn, "txn_commit", {
                gid: ("txn_commit", txn.txid)
                for gid in self.groups_of(txn)})
        else:
            super()._round_complete(txn, kind, replies)

    def _locks_answered(self, txn, replies):
        blocked = [reply for reply in replies.values() if reply[0] != "ok"]
        if blocked:
            self.conflicts_seen += sum(
                1 for reply in blocked if reply[0] == "conflict")
            self.reroutes += sum(
                1 for reply in blocked if reply[0] in ("frozen", "moved"))
            self._abort_then_retry(txn, replies)
            return
        for reply in replies.values():
            txn.reads.update(reply[1])
        if txn.abort_if is not None and txn.abort_if(txn.reads):
            txn.state = TxnState.ABORTING
            self._start_round(txn, "txn_abort", {
                gid: ("txn_abort", txn.txid)
                for gid in self.groups_of(txn)})
            txn.outcome = "aborted-by-logic"
            return
        writes = txn.update(dict(txn.reads))
        by_group = {}
        for key, value in writes.items():
            by_group.setdefault(self.key_of_group(key), {})[key] = value
        involved = self.groups_of(txn)
        if len(involved) == 1:
            (gid,) = involved
            txn.state = TxnState.COMMITTING
            self._start_round(txn, "txn_apply", {
                gid: ("txn_apply", txn.txid,
                      tuple(sorted(by_group.get(gid, {}).items())))})
            return
        txn.state = TxnState.PREPARING
        self._start_round(txn, "txn_prepare", {
            gid: ("txn_prepare", txn.txid,
                  tuple(sorted(by_group.get(gid, {}).items())))
            for gid in involved})
