"""Critical-path extraction and latency attribution for one span.

The anchors of a span (the req-correlated events the builder collected)
form a sub-graph of the run's happens-before relation: per-node program
order plus send->deliver message edges.  The *critical path* is found
by chaining backward from the span's end anchor:

* a deliver's predecessor is its matching send (``msg_id`` edge);
* anything else is preceded by the latest earlier anchor on the same
  node (program order).

Every step of the resulting chain is a real happens-before edge ending
at the event that unblocked the next one, so the chain *is* a path
through the happens-before graph from the span's start to its end —
and because each step's duration is the difference of consecutive
anchor times, the per-segment durations telescope: they sum to exactly
``end - start``.  That is the invariant the acceptance tests assert —
no request time is lost or double-counted by the attribution.

Each edge is then attributed to a named segment by what its *ending*
event represents: arriving messages are ``network``, waiting for a
proposal slot is ``propose-wait``, the quorum round is ``quorum-wait``,
state-machine application is ``apply``, and the coordinator's 2PC
rounds map to ``lock`` / ``2pc-prepare`` / ``2pc-decide`` /
``2pc-commit`` (``apply`` for the single-shard fast path).
"""

from bisect import bisect_left

from ..trace.events import DELIVER, LOCAL, SEND

#: Segment attributed to an edge ending at a milestone with this label.
SEGMENT_BY_LABEL = {
    "propose": "propose-wait",
    "commit": "quorum-wait",
    "apply": "apply",
    "txn_begin": "coord",
    "txn_round": "coord",
    "txn_timeout": "timeout",
    "txn_finish": "coord",
}

#: Segment attributed to a completed coordinator round, by round kind.
ROUND_SEGMENTS = {
    "txn_lock": "lock",
    "txn_apply": "apply",
    "txn_prepare": "2pc-prepare",
    "txn_decide": "2pc-decide",
    "txn_commit": "2pc-commit",
    "txn_abort": "abort",
}


def classify(prev, event):
    """Name the segment of the happens-before edge ``prev -> event``."""
    if event.kind == DELIVER:
        return "network"
    if event.kind == LOCAL:
        if event.mtype == "txn_round_done":
            return ROUND_SEGMENTS.get(event.get("kind"), "other")
        return SEGMENT_BY_LABEL.get(event.mtype, "other")
    if event.kind == SEND:
        return "queue"
    return "other"


def critical_path(events, end):
    """The backward-chained anchor path ending at ``end``.

    ``events`` are the span's anchors in recording (``seq``) order;
    the returned list runs start -> end.
    """
    sends = {}
    by_node = {}
    for event in events:
        if event.kind == SEND and event.msg_id >= 0 \
                and event.msg_id not in sends:
            sends[event.msg_id] = event
        if event.node:
            by_node.setdefault(event.node, []).append(event)
    node_seqs = {node: [e.seq for e in series]
                 for node, series in by_node.items()}

    def predecessor(event):
        if event.kind == DELIVER:
            send = sends.get(event.msg_id)
            if send is not None and send.seq < event.seq:
                return send
        series = by_node.get(event.node)
        if not series:
            return None
        position = bisect_left(node_seqs[event.node], event.seq)
        if position > 0:
            return series[position - 1]
        return None

    chain = [end]
    current = end
    while True:
        earlier = predecessor(current)
        if earlier is None:
            break
        chain.append(earlier)
        current = earlier
    chain.reverse()
    return chain


def attribute(span):
    """Fill ``span.start`` / ``span.path`` / ``span.segments``.

    The span's ``end`` anchor must already be resolved.  Segments are
    accumulated in path order, so the floats sum in a deterministic
    order (byte-stable reports).
    """
    if span.end is None:
        return span
    chain = critical_path(span.events, span.end)
    span.start = chain[0]
    path = []
    segments = {}
    for prev, event in zip(chain, chain[1:]):
        segment = classify(prev, event)
        path.append((segment, prev, event))
        segments[segment] = segments.get(segment, 0.0) \
            + (event.time - prev.time)
    span.path = path
    span.segments = segments
    return span
