"""Observability over traces: request spans, critical-path attribution,
windowed SLO time-series, and Chrome-trace export.

Everything in this package is *derived* — a pure, deterministic
function of an already-recorded :class:`~repro.trace.trace.Trace`.  No
hot-path hooks live here, so span analysis costs nothing until asked
for (the PR 6 cost model), and a merged parallel trace yields byte-for-
byte the same spans as a sequential one.
"""

from .critical import ROUND_SEGMENTS, SEGMENT_BY_LABEL, attribute, critical_path
from .export_chrome import chrome_to_json, to_chrome, write_chrome
from .spans import (
    SCHEMA,
    Span,
    SpanBuilder,
    parse_request_id,
    render_spans_summary,
    render_waterfall,
    span_to_dict,
    spans_report,
)
from .timeseries import DEFAULT_WINDOW, build_timeseries, slo_summary

__all__ = [
    "DEFAULT_WINDOW",
    "ROUND_SEGMENTS",
    "SCHEMA",
    "SEGMENT_BY_LABEL",
    "Span",
    "SpanBuilder",
    "attribute",
    "build_timeseries",
    "chrome_to_json",
    "critical_path",
    "parse_request_id",
    "render_spans_summary",
    "render_waterfall",
    "slo_summary",
    "span_to_dict",
    "spans_report",
    "to_chrome",
    "write_chrome",
]
