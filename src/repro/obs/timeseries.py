"""Windowed latency/segment time-series and SLO summaries over spans.

Spans are bucketed into fixed-width *virtual-time* windows by their
completion time; each window reuses :class:`~repro.telemetry.Histogram`
for the latency distribution (p50/p90/p99/p999) and sums the critical
path's segment durations — the "where did this minute's p99 go" view
ROADMAP item 3 asks for.  Only completed spans enter the series:
abandoned requests have no defined latency.

The SLO summary follows the burn-rate convention: with an error budget
of ``budget`` (default 1% of requests allowed over the threshold), a
burn rate of 1.0 means the budget is being consumed exactly at its
sustainable rate, and N means N times too fast.  The worst single
window's burn rate is reported alongside the whole-run rate, since a
short spike can hide inside a compliant average.
"""

from ..telemetry.instruments import Histogram, _finite

#: Default window width, in virtual-time units.
DEFAULT_WINDOW = 100.0


def build_timeseries(spans, window=DEFAULT_WINDOW, slo=None):
    """Per-window latency/segment rows for the completed root spans.

    Returns a list of dicts sorted by window start; windows with no
    completed span are omitted (the series is sparse).
    """
    if not window or window <= 0:
        window = DEFAULT_WINDOW
    buckets = {}
    for span in spans:
        if not span.completed:
            continue
        index = int(span.end_time // window)
        bucket = buckets.get(index)
        if bucket is None:
            bucket = buckets[index] = {
                "histogram": Histogram(),
                "segments": {},
                "violations": 0,
            }
        bucket["histogram"].observe(span.latency)
        for name, value in span.segments.items():
            bucket["segments"][name] = \
                bucket["segments"].get(name, 0.0) + value
        if slo is not None and span.latency > slo:
            bucket["violations"] += 1
    rows = []
    for index in sorted(buckets):
        bucket = buckets[index]
        histogram = bucket["histogram"]
        row = {
            "t0": _finite(index * window),
            "t1": _finite((index + 1) * window),
            "count": histogram.count,
            "latency": histogram.summary(),
            "segments": {name: _finite(value)
                         for name, value in
                         sorted(bucket["segments"].items())},
        }
        if slo is not None:
            row["violations"] = bucket["violations"]
            row["violation_fraction"] = _finite(
                bucket["violations"] / histogram.count)
        rows.append(row)
    return rows


def slo_summary(spans, threshold, budget=0.01, window=DEFAULT_WINDOW):
    """Whole-run SLO verdict for the completed root spans.

    ``threshold`` is the latency objective in virtual-time units;
    ``budget`` the allowed violation fraction.  Burn rate is the
    violation fraction divided by the budget — above 1.0 the error
    budget is being consumed faster than it regenerates.
    """
    completed = [span for span in spans if span.completed]
    violations = sum(1 for span in completed if span.latency > threshold)
    total = len(completed)
    fraction = (violations / total) if total else 0.0
    worst = 0.0
    for row in build_timeseries(spans, window=window, slo=threshold):
        worst = max(worst, row["violation_fraction"] / budget)
    return {
        "threshold": _finite(float(threshold)),
        "budget": _finite(float(budget)),
        "requests": total,
        "violations": violations,
        "violation_fraction": _finite(fraction),
        "compliance": _finite(1.0 - fraction),
        "burn_rate": _finite(fraction / budget),
        "worst_window_burn_rate": _finite(worst),
    }
