"""Chrome-trace (``chrome://tracing`` / Perfetto) export of a run's spans.

Emits the Trace Event Format's JSON object form: a ``traceEvents``
array of complete (``"ph": "X"``) events with microsecond timestamps,
preceded by ``process_name``/``thread_name`` metadata.  One virtual
time unit maps to one millisecond (ts is in us), so the waterfall's
proportions survive into the viewer.

Track layout: everything lives in one process (the simulated fleet);
thread 0 is the *requests* track holding one bar per root span, and
each node gets its own thread holding that node's critical-path
segments.  Load the file via "Load" in ``chrome://tracing`` or
https://ui.perfetto.dev.

Like every exporter in this repo the output is canonical JSON (sorted
keys, compact separators, trailing newline) built from deterministic
span data, so same-seed exports are byte-identical.
"""

import json

from ..ioutil import ensure_parent

#: Virtual-time unit -> Chrome trace microseconds (1 unit = 1 ms).
SCALE_US = 1000.0


def _nodes_of(spans):
    names = set()
    stack = list(spans)
    while stack:
        span = stack.pop()
        stack.extend(span.children)
        for _segment, prev, event in span.path:
            for name in (prev.node, event.node):
                if name:
                    names.add(name)
    return sorted(names)


def to_chrome(spans, protocol=""):
    """Build the Chrome trace document (a plain dict) for ``spans``."""
    nodes = _nodes_of(spans)
    tid_of = {name: index + 1 for index, name in enumerate(nodes)}
    events = [
        {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
         "args": {"name": "repro %s" % protocol if protocol else "repro"}},
        {"ph": "M", "pid": 1, "tid": 0, "name": "thread_name",
         "args": {"name": "requests"}},
    ]
    for name in nodes:
        events.append({"ph": "M", "pid": 1, "tid": tid_of[name],
                       "name": "thread_name", "args": {"name": name}})
    stack = list(spans)
    while stack:
        span = stack.pop(0)
        stack.extend(span.children)
        if span.start is None or span.latency is None:
            continue
        events.append({
            "ph": "X", "pid": 1, "tid": 0,
            "name": span.req, "cat": span.kind,
            "ts": span.start_time * SCALE_US,
            "dur": span.latency * SCALE_US,
            "args": {
                "completed": span.completed,
                "segments": {name: round(value, 9) for name, value
                             in sorted(span.segments.items())},
            },
        })
        for segment, prev, event in span.path:
            duration = event.time - prev.time
            if duration <= 0:
                continue
            track = event.node or prev.node
            events.append({
                "ph": "X", "pid": 1, "tid": tid_of.get(track, 0),
                "name": segment, "cat": "segment",
                "ts": prev.time * SCALE_US,
                "dur": duration * SCALE_US,
                "args": {"req": span.req, "mtype": event.mtype},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_to_json(document):
    """Serialise the document to canonical byte-stable JSON."""
    return json.dumps(document, sort_keys=True,
                      separators=(",", ":")) + "\n"


def write_chrome(document, path):
    """Write the Chrome trace to ``path``; returns the event count."""
    payload = chrome_to_json(document)
    with open(ensure_parent(path), "w", encoding="utf-8",
              newline="\n") as handle:
        handle.write(payload)
    return len(document["traceEvents"])
