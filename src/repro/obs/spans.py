"""Request spans: per-request structure derived lazily from a trace.

The tracer records flat events; this module folds them into *spans* —
one per client request or distributed transaction — after the run, from
the trace alone.  Nothing here runs on the hot path: deriving spans is
a pure function of the recorded trace (and therefore deterministic and
byte-stable across same-seed runs and parallel worker counts).

Correlation works through the ``req`` id each participating event
carries:

* message events (send/deliver) expose the message's ``request_id``
  through the tracer's detail plan;
* protocol milestones (``propose``/``commit``/``apply``) and the
  transaction coordinator's ``txn_*`` milestones carry an explicit
  ``req=`` detail pair.

Transaction round requests are named ``<txid>-<round>-<n>`` by the
coordinator, so a cross-shard commit folds into a span *tree*: the txn
root span (coordinator milestones) with one child span per per-shard
consensus round — Gray & Lamport's decomposition made visible.

:class:`SpanBuilder` groups the anchors, :mod:`repro.obs.critical`
chains them into the critical path and attributes latency to named
segments, and :func:`spans_report` assembles the deterministic JSON
artifact behind ``python -m repro spans``.
"""

from ..telemetry.instruments import Histogram, _finite
from ..trace.events import DELIVER, LOCAL, SEND
from .critical import attribute

#: Schema tag for the JSON spans report.
SCHEMA = "repro.obs.spans/1"

#: Round kinds the transaction coordinator names its sub-requests after.
TXN_ROUND_KINDS = ("txn_lock", "txn_apply", "txn_prepare", "txn_decide",
                   "txn_commit", "txn_abort")

#: Coordinator milestone labels anchoring a transaction's root span.
TXN_LABELS = frozenset({"txn_begin", "txn_round", "txn_round_done",
                        "txn_timeout", "txn_finish"})


def parse_request_id(rid):
    """``(txid, round_kind)`` for a coordinator round request id.

    Round requests are named ``<txid>-<round_kind>-<seq>`` (timeout
    aborts: ``<txid>-timeout-abort-<seq>``); anything else — a plain
    client request id — returns ``(None, None)``.
    """
    marker = "-timeout-abort-"
    pos = rid.find(marker)
    if pos > 0 and rid[pos + len(marker):].isdigit():
        return rid[:pos], "txn_abort"
    for kind in TXN_ROUND_KINDS:
        marker = "-%s-" % kind
        pos = rid.find(marker)
        if pos > 0 and rid[pos + len(marker):].isdigit():
            return rid[:pos], kind
    return None, None


def request_of(event):
    """The request id ``event`` participates in, or ``None``.

    Milestones carry ``req=``; message events carry the message's
    ``request_id`` field (client requests, replies, redirects).
    """
    if event.kind == LOCAL:
        return event.get("req")
    if event.kind == SEND or event.kind == DELIVER:
        return event.get("request_id")
    return None


class Span:
    """One request's (or transaction's, or round's) derived span.

    Attributes are filled in two stages: the builder collects the
    anchor ``events`` and resolves ``end``/``completed``; the critical
    module then sets ``start``, ``path`` (the happens-before chain from
    start to end, one ``(segment, prev, event)`` step per edge) and
    ``segments`` (segment name -> summed duration).  The segment
    durations telescope, so they sum to exactly ``latency``.
    """

    __slots__ = ("req", "kind", "round_kind", "events", "children",
                 "start", "end", "completed", "outcome", "path",
                 "segments")

    def __init__(self, req, kind, round_kind=None):
        self.req = req
        self.kind = kind  # "request" | "txn" | "round"
        self.round_kind = round_kind
        self.events = []
        self.children = []
        self.start = None
        self.end = None
        self.completed = False
        self.outcome = None
        self.path = []
        self.segments = {}

    @property
    def start_time(self):
        return self.start.time if self.start is not None else None

    @property
    def end_time(self):
        return self.end.time if self.end is not None else None

    @property
    def latency(self):
        if self.start is None or self.end is None:
            return None
        return self.end.time - self.start.time

    def __repr__(self):
        state = "completed" if self.completed else "abandoned"
        return "Span(%s, %s, %s, %d events, %d children)" % (
            self.req, self.kind, state, len(self.events),
            len(self.children))


class SpanBuilder:
    """Folds a :class:`~repro.trace.trace.Trace` into root spans.

    One pass over the trace buckets the req-carrying anchors; a second
    pass resolves each bucket into a :class:`Span`, parents rounds under
    their transaction, and runs the critical-path attribution.  The
    result is sorted by first-anchor order, so it is as deterministic
    as the trace itself.
    """

    def __init__(self, trace):
        self.trace = trace

    def build(self):
        """Derive and return the list of root :class:`Span` objects."""
        buckets = {}
        order = []
        for event in self.trace.events:
            rid = request_of(event)
            if rid is None:
                continue
            bucket = buckets.get(rid)
            if bucket is None:
                bucket = buckets[rid] = []
                order.append(rid)
            bucket.append(event)

        spans = {}
        roots = []
        for rid in order:
            txid, round_kind = parse_request_id(rid)
            if txid is not None:
                span = Span(rid, "round", round_kind)
            elif any(e.kind == LOCAL and e.mtype in TXN_LABELS
                     for e in buckets[rid]):
                span = Span(rid, "txn")
            else:
                span = Span(rid, "request")
            span.events = buckets[rid]
            spans[rid] = span
            if txid is None:
                roots.append(span)
        # Parent rounds under their transaction (in first-anchor order);
        # a round whose txn never produced a milestone — possible with a
        # bounded ring that evicted the coordinator's prefix — becomes
        # its own root so no anchor is silently dropped.
        for rid in order:
            span = spans[rid]
            if span.kind != "round":
                continue
            txid, _kind = parse_request_id(rid)
            parent = spans.get(txid)
            if parent is not None and parent.kind == "txn":
                parent.children.append(span)
            else:
                roots.append(span)
        for span in spans.values():
            self._resolve_end(span)
            attribute(span)
        return roots

    @staticmethod
    def _resolve_end(span):
        """Pick the span's end anchor and completion verdict.

        A transaction completes at its ``txn_finish`` milestone; a
        request (or round) completes when a reply message reaches the
        requester — the node that sent the first request message.
        Anything else (crash mid-2PC, fire-and-forget aborts) is an
        *abandoned* span ending at its last anchor.
        """
        events = span.events
        if span.kind == "txn":
            for event in events:
                if event.kind == LOCAL and event.mtype == "txn_finish":
                    span.end = event
                    span.completed = True
                    span.outcome = event.get("outcome")
                    return
            span.end = events[-1]
            return
        requester = None
        for event in events:
            if event.kind == SEND:
                requester = event.node
                break
        if requester is None:
            requester = events[0].node
        for event in events:
            if event.kind == DELIVER and event.node == requester \
                    and event.mtype.endswith("reply"):
                span.end = event
                span.completed = True
                return
        span.end = events[-1]


def _walk(spans):
    for span in spans:
        yield span
        for child in span.children:
            yield child


def span_to_dict(span, with_children=True):
    """Plain-dict form of one span for the JSON report."""
    entry = {
        "req": span.req,
        "kind": span.kind,
        "start": _finite(span.start_time),
        "end": _finite(span.end_time),
        "latency": _finite(span.latency),
        "completed": span.completed,
        "segments": {name: _finite(value)
                     for name, value in sorted(span.segments.items())},
        "critical_path": [
            {
                "segment": segment,
                "t0": _finite(prev.time),
                "t1": _finite(event.time),
                "node": event.node,
                "kind": event.kind,
                "mtype": event.mtype,
            }
            for segment, prev, event in span.path
        ],
    }
    if span.kind == "txn":
        entry["outcome"] = span.outcome
    if span.kind == "round":
        entry["round"] = span.round_kind
    if with_children and span.children:
        entry["rounds"] = [span_to_dict(child, with_children=False)
                           for child in span.children]
    return entry


def spans_report(spans, protocol="", seed=None, virtual_time=None,
                 window=100.0, slo=None, slo_budget=0.01):
    """Assemble the deterministic spans report as a plain dict.

    Serialise with :func:`repro.telemetry.report_to_json` /
    ``write_report`` — same canonical recipe (sorted keys, compact
    separators, trailing newline), so same-seed runs and every parallel
    worker count produce byte-identical output.
    """
    from .timeseries import build_timeseries, slo_summary
    completed = [s for s in spans if s.completed]
    latency = Histogram()
    segment_totals = {}
    for span in completed:
        latency.observe(span.latency)
        for name, value in span.segments.items():
            segment_totals[name] = segment_totals.get(name, 0.0) + value
    report = {
        "schema": SCHEMA,
        "protocol": str(protocol),
        "seed": seed,
        "virtual_time": _finite(virtual_time),
        "requests": [span_to_dict(span) for span in spans],
        "summary": {
            "requests": len(spans),
            "completed": len(completed),
            "abandoned": len(spans) - len(completed),
            "txns": sum(1 for s in spans if s.kind == "txn"),
            "latency": latency.summary(),
            "segments": {name: _finite(value)
                         for name, value in sorted(segment_totals.items())},
        },
        "timeseries": build_timeseries(spans, window=window, slo=slo),
    }
    if slo is not None:
        report["slo"] = slo_summary(spans, slo, budget=slo_budget)
    return report


# -- ASCII waterfall ---------------------------------------------------------

#: Bar width of the waterfall's full span, in characters.
WATERFALL_WIDTH = 44


def render_waterfall(span, width=WATERFALL_WIDTH, indent=""):
    """Render one span's critical path as an ASCII waterfall.

    One row per critical-path step, with the bar positioned at the
    step's offset inside the span; transaction spans append their round
    children, indented.
    """
    lines = []
    state = "completed" if span.completed else "ABANDONED"
    extra = " outcome=%s" % span.outcome if span.outcome else ""
    lines.append("%sspan %s (%s) t=[%g .. %g] latency %g %s%s"
                 % (indent, span.req, span.kind, span.start_time,
                    span.end_time, span.latency, state, extra))
    total = span.latency or 0.0
    scale = (width / total) if total > 0 else 0.0
    for segment, prev, event in span.path:
        t0 = prev.time - span.start_time
        t1 = event.time - span.start_time
        lead = int(round(t0 * scale))
        span_chars = max(int(round((t1 - t0) * scale)), 0)
        if t1 > t0 and span_chars == 0:
            span_chars = 1
        lead = min(lead, width - span_chars)
        bar = " " * lead + "#" * span_chars
        lines.append("%s  %-12s %8.3f |%-*s| %s %s"
                     % (indent, segment, t1 - t0, width, bar,
                        event.node or "-", event.mtype))
    for child in span.children:
        lines.extend(render_waterfall(child, width=width,
                                      indent=indent + "    "))
    return lines


def render_spans_summary(report):
    """Human-oriented ASCII rendering of a spans report."""
    lines = []
    summary = report["summary"]
    lines.append("spans: %s (seed %s)" % (report["protocol"],
                                          report["seed"]))
    lines.append("  %d request(s): %d completed, %d abandoned, %d txn(s)"
                 % (summary["requests"], summary["completed"],
                    summary["abandoned"], summary["txns"]))
    digest = summary["latency"]
    if digest["count"]:
        lines.append("  latency: p50=%s p90=%s p99=%s p999=%s max=%s"
                     % tuple(digest[k] for k in
                             ("p50", "p90", "p99", "p999", "max")))
    if summary["segments"]:
        total = sum(summary["segments"].values()) or 1.0
        lines.append("  attribution (all completed requests):")
        for name, value in sorted(summary["segments"].items(),
                                  key=lambda item: (-item[1], item[0])):
            lines.append("    %-12s %10.3f  (%4.1f%%)"
                         % (name, value, 100.0 * value / total))
    for row in report["timeseries"]:
        slo_part = ""
        if "violations" in row:
            slo_part = " | %d violation(s)" % row["violations"]
        lines.append("  window [%g..%g): %d req, p99=%s%s"
                     % (row["t0"], row["t1"], row["count"],
                        row["latency"]["p99"], slo_part))
    slo = report.get("slo")
    if slo is not None:
        lines.append("  slo %g: compliance %.4f, burn rate %.2fx "
                     "(budget %g, worst window %.2fx)"
                     % (slo["threshold"], slo["compliance"],
                        slo["burn_rate"], slo["budget"],
                        slo["worst_window_burn_rate"]))
    return "\n".join(lines)
