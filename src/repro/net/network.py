"""The simulated network transport.

:class:`Network` owns the registered nodes, asks its delivery model when
each message arrives, honours partitions, feeds the metrics collector,
and gives fault injectors an interception point for adversarial message
manipulation (drop / delay / duplicate — Byzantine *content* corruption
lives in the Byzantine node behaviours, since honest transports don't
rewrite payloads).
"""

from .delivery import DeliveryModel, UniformDelayModel
from .message import protocol_of
from .partitions import PartitionManager


class Network:
    """Message fabric connecting :class:`~repro.core.node.Node` processes.

    Parameters
    ----------
    sim:
        The simulator supplying the clock, RNG and event queue.
    delivery:
        A :class:`~repro.net.delivery.DeliveryModel`; defaults to mildly
        jittered bounded delay.
    metrics:
        Optional :class:`~repro.metrics.MetricsCollector`; every sent
        message is recorded on it.
    tracer:
        Optional :class:`~repro.trace.Tracer`; every send, delivery and
        drop is recorded on it.  ``None`` (the default) keeps the send
        path on the untraced fast branch.
    telemetry:
        Optional :class:`~repro.telemetry.MetricsRegistry`; sends, bytes
        and drops are recorded as labeled series — ``(protocol, mtype,
        link)`` for traffic, ``(reason, mtype)`` for drops, per-node
        send/receive counters.  ``None`` (the default) skips it all.
    """

    def __init__(self, sim, delivery=None, metrics=None, tracer=None,
                 telemetry=None):
        self.sim = sim
        self.delivery = delivery if delivery is not None else UniformDelayModel()
        self.metrics = metrics
        self.tracer = tracer
        self.telemetry = telemetry
        self.partitions = PartitionManager()
        self._nodes = {}
        self._interceptors = []

    # -- membership --------------------------------------------------------

    def register(self, node):
        """Attach a node to the fabric.  Names must be unique."""
        if node.name in self._nodes:
            raise ValueError("duplicate node name %r" % (node.name,))
        self._nodes[node.name] = node

    def node(self, name):
        """Look up a registered node by name."""
        return self._nodes[name]

    @property
    def node_names(self):
        """Registered node names, in registration order."""
        return list(self._nodes)

    @property
    def nodes(self):
        """Registered node objects, in registration order."""
        return list(self._nodes.values())

    # -- interception ------------------------------------------------------

    def add_interceptor(self, interceptor):
        """Register ``interceptor(src, dst, message) -> bool``.

        Returning ``False`` suppresses delivery.  Used by fault injectors
        (targeted message loss, delaying a specific node's traffic) and by
        metrics probes in tests.
        """
        self._interceptors.append(interceptor)

    def remove_interceptor(self, interceptor):
        self._interceptors.remove(interceptor)

    # -- sending -----------------------------------------------------------

    def send(self, src, dst, message):
        """Send ``message`` from node named ``src`` to node named ``dst``.

        Returns ``True`` if the message was put in flight (it may still be
        dropped by the delivery model), ``False`` if suppressed outright.
        """
        if dst not in self._nodes:
            raise KeyError("unknown destination %r" % (dst,))
        if self.metrics is not None:
            self.metrics.record_message(src, dst, message)
        telemetry = self.telemetry
        if telemetry is not None:
            proto = protocol_of(message)
            link = "%s->%s" % (src, dst)
            telemetry.counter("net_messages_total", protocol=proto,
                              mtype=message.mtype, link=link).inc()
            telemetry.counter("net_bytes_total", protocol=proto,
                              mtype=message.mtype,
                              link=link).inc(message.size_estimate())
            telemetry.counter("node_sent_total", node=src).inc()
        tracer = self.tracer
        token = tracer.on_send(src, dst, message) if tracer is not None else None
        for interceptor in self._interceptors:
            if interceptor(src, dst, message) is False:
                if tracer is not None:
                    tracer.on_drop(src, dst, message, "intercepted", token)
                self._count_drop(message, "intercepted")
                return False
        if not self.partitions.connected(src, dst):
            if tracer is not None:
                tracer.on_drop(src, dst, message, "partitioned", token)
            self._count_drop(message, "partitioned")
            return False
        delay = self.delivery.delay(self.sim.rng, src, dst, self.sim.now)
        if delay is DeliveryModel.DROP:
            if tracer is not None:
                tracer.on_drop(src, dst, message, "lost", token)
            self._count_drop(message, "lost")
            return False
        if tracer is None:
            self.sim.schedule(delay, self._deliver, src, dst, message)
        else:
            self.sim.schedule(delay, self._deliver_traced, src, dst, message,
                              token)
        return True

    def broadcast(self, src, message, include_self=False):
        """Send ``message`` from ``src`` to every registered node.

        Each copy is an independent unicast (the paper's model: two-party
        messages), so each samples its own delay and counts as one message.
        """
        sent = 0
        for name in self._nodes:
            if name == src and not include_self:
                continue
            if self.send(src, name, message):
                sent += 1
        return sent

    def multicast(self, src, dsts, message):
        """Unicast ``message`` to each destination in ``dsts``."""
        sent = 0
        for dst in dsts:
            if self.send(src, dst, message):
                sent += 1
        return sent

    def _count_drop(self, message, reason):
        if self.telemetry is not None:
            self.telemetry.counter("net_drops_total", reason=reason,
                                   mtype=message.mtype).inc()

    def _count_receive(self, dst):
        if self.telemetry is not None:
            self.telemetry.counter("node_received_total", node=dst).inc()

    def _deliver(self, src, dst, message):
        node = self._nodes.get(dst)
        if node is None or node.crashed:
            self._count_drop(message, "crashed")
            return
        self._count_receive(dst)
        node.deliver(message, src)

    def _deliver_traced(self, src, dst, message, token):
        node = self._nodes.get(dst)
        if node is None or node.crashed:
            self.tracer.on_drop(src, dst, message, "crashed", token)
            self._count_drop(message, "crashed")
            return
        self.tracer.on_deliver(src, dst, message, token)
        self._count_receive(dst)
        node.deliver(message, src)
