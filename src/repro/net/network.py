"""The simulated network transport.

:class:`Network` owns the registered nodes, asks its delivery model when
each message arrives, honours partitions, feeds the metrics collector,
and gives fault injectors an interception point for adversarial message
manipulation (drop / delay / duplicate — Byzantine *content* corruption
lives in the Byzantine node behaviours, since honest transports don't
rewrite payloads).

The send path is the hottest loop in the library — quadratic-traffic
protocols (PBFT) push tens of thousands of messages per run — so its
telemetry is served from pre-resolved counter handles cached per
``(message class, src, dst)`` link, and the common case (no tracer, no
interceptors, no partition) takes a short branch straight to the
delivery model.
"""

from ..sim.errors import ClockError
from .delivery import DeliveryModel, UniformDelayModel
from .message import protocol_of
from .partitions import PartitionManager


class Network:
    """Message fabric connecting :class:`~repro.core.node.Node` processes.

    Parameters
    ----------
    sim:
        The simulator supplying the clock, RNG and event queue.
    delivery:
        A :class:`~repro.net.delivery.DeliveryModel`; defaults to mildly
        jittered bounded delay.
    metrics:
        Optional :class:`~repro.metrics.MetricsCollector`; every sent
        message is recorded on it.
    tracer:
        Optional :class:`~repro.trace.Tracer`; every send, delivery and
        drop is recorded on it.  ``None`` (the default) keeps the send
        path on the untraced fast branch.
    telemetry:
        Optional :class:`~repro.telemetry.MetricsRegistry`; sends, bytes
        and drops are recorded as labeled series — ``(protocol, mtype,
        link)`` for traffic, ``(reason, mtype)`` for drops, per-node
        send/receive counters.  ``None`` (the default) skips it all.
    """

    def __init__(self, sim, delivery=None, metrics=None, tracer=None,
                 telemetry=None):
        self.sim = sim
        self.delivery = delivery if delivery is not None else UniformDelayModel()
        self.metrics = metrics
        self.tracer = tracer
        self.telemetry = telemetry
        self.partitions = PartitionManager()
        self._nodes = {}
        self._interceptors = []
        # Membership tuples handed out by :attr:`node_names`/:attr:`nodes`,
        # rebuilt on :meth:`register` — protocol loops read them per
        # broadcast, so they must not allocate per access.
        self._names_cache = None
        self._nodes_cache = None
        # Unified per-link fast-path cache, keyed (message class, src,
        # dst): each entry is ``(slot, handles)`` — the collector's
        # [count, bytes] accumulation slot and the pre-resolved telemetry
        # counter handles (either may be None).  Resolving a telemetry
        # handle sorts and hashes the label dict; these memos make every
        # later send on the same link a handful of inline increments.
        self._link_handles = {}
        self._drop_handles = {}
        self._recv_handles = {}

    # -- membership --------------------------------------------------------

    def register(self, node):
        """Attach a node to the fabric.  Names must be unique."""
        if node.name in self._nodes:
            raise ValueError("duplicate node name %r" % (node.name,))
        self._nodes[node.name] = node
        self._names_cache = None
        self._nodes_cache = None

    def node(self, name):
        """Look up a registered node by name."""
        return self._nodes[name]

    @property
    def node_names(self):
        """Registered node names, in registration order (immutable tuple,
        cached between registrations)."""
        names = self._names_cache
        if names is None:
            names = self._names_cache = tuple(self._nodes)
        return names

    @property
    def nodes(self):
        """Registered node objects, in registration order (immutable
        tuple, cached between registrations)."""
        nodes = self._nodes_cache
        if nodes is None:
            nodes = self._nodes_cache = tuple(self._nodes.values())
        return nodes

    # -- interception ------------------------------------------------------

    def add_interceptor(self, interceptor):
        """Register ``interceptor(src, dst, message) -> bool``.

        Returning ``False`` suppresses delivery.  Used by fault injectors
        (targeted message loss, delaying a specific node's traffic) and by
        metrics probes in tests.
        """
        self._interceptors.append(interceptor)

    def remove_interceptor(self, interceptor):
        self._interceptors.remove(interceptor)

    # -- sending -----------------------------------------------------------

    def send(self, src, dst, message, _size=None):
        """Send ``message`` from node named ``src`` to node named ``dst``.

        Returns ``True`` if the message was put in flight (it may still be
        dropped by the delivery model), ``False`` if suppressed outright.
        ``_size`` lets :meth:`broadcast`/:meth:`multicast` cost the shared
        payload once instead of once per destination.
        """
        if dst not in self._nodes:
            raise KeyError("unknown destination %r" % (dst,))
        size = _size
        cached = self._link_handles.get((message.__class__, src, dst))
        if cached is None:
            cached = self._resolve_link(src, dst, message)
        slot, handles = cached
        if slot is not None:
            if size is None:
                size = message.size_estimate()
            # Batched collector lane: two list-cell bumps; the collector
            # folds slots into its aggregates on read.
            slot[0] += 1
            slot[1] += size
        if handles is not None:
            if size is None:
                size = message.size_estimate()
            # Direct slot stores, not ``inc()`` calls: the amounts are
            # non-negative by construction, so the counter's guard (and
            # the call frame) buys nothing here.
            handles[0].value += 1
            handles[1].value += size
            handles[2].value += 1
        tracer = self.tracer
        # ``partitions._group_of is None`` is the PartitionManager.active
        # check without the property-call overhead — this test runs once
        # per message.
        if tracer is None and not self._interceptors \
                and self.partitions._group_of is None:
            # Fast branch: nothing can suppress the send, so go straight
            # to the delivery model and schedule the delivery inline
            # (bypassing Simulator.schedule's call frame).  Identical
            # observable behaviour (and RNG draw order) to the general
            # path below.
            sim = self.sim
            delay = self.delivery.delay(sim.rng, src, dst, sim.now)
            if delay is DeliveryModel.DROP:
                self._count_drop(message, "lost")
                return False
            if delay < 0:
                raise ClockError(
                    "cannot schedule in the past (delay=%r)" % (delay,))
            sim._queue.push_transient(sim._now + delay, self._deliver,
                                      (src, dst, message))
            return True
        token = tracer.on_send(src, dst, message) if tracer is not None else None
        for interceptor in self._interceptors:
            if interceptor(src, dst, message) is False:
                if tracer is not None:
                    tracer.on_drop(src, dst, message, "intercepted", token)
                self._count_drop(message, "intercepted")
                return False
        if not self.partitions.connected(src, dst):
            if tracer is not None:
                tracer.on_drop(src, dst, message, "partitioned", token)
            self._count_drop(message, "partitioned")
            return False
        sim = self.sim
        delay = self.delivery.delay(sim.rng, src, dst, sim.now)
        if delay is DeliveryModel.DROP:
            if tracer is not None:
                tracer.on_drop(src, dst, message, "lost", token)
            self._count_drop(message, "lost")
            return False
        if delay < 0:
            raise ClockError(
                "cannot schedule in the past (delay=%r)" % (delay,))
        # Deliveries are never cancelled, so they ride the queue's
        # transient lane: no Event object per message.
        if tracer is None:
            sim._queue.push_transient(sim._now + delay, self._deliver,
                                      (src, dst, message))
        else:
            sim._queue.push_transient(sim._now + delay, self._deliver_traced,
                                      (src, dst, message, token))
        return True

    def _resolve_link(self, src, dst, message):
        """Build and memoize the ``(slot, handles)`` pair for one link."""
        metrics = self.metrics
        slot = None if metrics is None else \
            metrics.slot_for(src, dst, message.mtype)
        handles = None
        telemetry = self.telemetry
        if telemetry is not None:
            link = "%s->%s" % (src, dst)
            proto = protocol_of(message)
            mtype = message.mtype
            handles = (
                telemetry.handle("counter", "net_messages_total",
                                 protocol=proto, mtype=mtype, link=link),
                telemetry.handle("counter", "net_bytes_total",
                                 protocol=proto, mtype=mtype, link=link),
                telemetry.handle("counter", "node_sent_total", node=src),
            )
        cached = (slot, handles)
        self._link_handles[(message.__class__, src, dst)] = cached
        return cached

    def broadcast(self, src, message, include_self=False):
        """Send ``message`` from ``src`` to every registered node.

        Each copy is an independent unicast (the paper's model: two-party
        messages), so each samples its own delay and counts as one message.
        """
        sent = 0
        size = self._shared_size(message)
        for name in self._nodes:
            if name == src and not include_self:
                continue
            if self.send(src, name, message, _size=size):
                sent += 1
        return sent

    def multicast(self, src, dsts, message):
        """Unicast ``message`` to each destination in ``dsts``."""
        sent = 0
        size = self._shared_size(message)
        for dst in dsts:
            if self.send(src, dst, message, _size=size):
                sent += 1
        return sent

    def _shared_size(self, message):
        """Cost a fan-out payload once: every copy of a broadcast carries
        the same bytes, so the per-field walk need not repeat per
        destination.  ``None`` when nothing consumes sizes."""
        if self.metrics is not None or self.telemetry is not None:
            return message.size_estimate()
        return None

    def _count_drop(self, message, reason):
        if self.telemetry is not None:
            key = (message.__class__, reason)
            inc = self._drop_handles.get(key)
            if inc is None:
                inc = self.telemetry.handle(
                    "counter", "net_drops_total", reason=reason,
                    mtype=message.mtype).inc
                self._drop_handles[key] = inc
            inc()

    def _count_receive(self, dst):
        if self.telemetry is not None:
            counter = self._recv_handles.get(dst)
            if counter is None:
                counter = self.telemetry.handle(
                    "counter", "node_received_total", node=dst)
                self._recv_handles[dst] = counter
            counter.value += 1

    def _deliver(self, src, dst, message):
        node = self._nodes.get(dst)
        if node is None or node.crashed:
            self._count_drop(message, "crashed")
            return
        # _count_receive inlined: this runs once per delivered message.
        if self.telemetry is not None:
            counter = self._recv_handles.get(dst)
            if counter is None:
                counter = self.telemetry.handle(
                    "counter", "node_received_total", node=dst)
                self._recv_handles[dst] = counter
            counter.value += 1
        node.deliver(message, src)

    def _deliver_traced(self, src, dst, message, token):
        node = self._nodes.get(dst)
        if node is None or node.crashed:
            self.tracer.on_drop(src, dst, message, "crashed", token)
            self._count_drop(message, "crashed")
            return
        self.tracer.on_deliver(src, dst, message, token)
        self._count_receive(dst)
        node.deliver(message, src)
