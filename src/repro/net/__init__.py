"""Simulated network: messages, delivery models, partitions, transport."""

from .delivery import (
    AsynchronousModel,
    DeliveryModel,
    PartialSynchronyModel,
    PerLinkModel,
    SynchronousModel,
    UniformDelayModel,
)
from .message import Envelope, Message, protocol_of
from .network import Network
from .partitions import PartitionManager

__all__ = [
    "AsynchronousModel",
    "DeliveryModel",
    "Envelope",
    "Message",
    "Network",
    "PartialSynchronyModel",
    "PartitionManager",
    "PerLinkModel",
    "SynchronousModel",
    "UniformDelayModel",
    "protocol_of",
]
