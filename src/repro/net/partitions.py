"""Network partitions.

A partition splits node names into disjoint groups; messages between
groups are dropped while the partition is active.  XFT's fault model
counts "correct but partitioned" replicas — this is the mechanism that
creates them.
"""


class PartitionManager:
    """Tracks the active partition, if any.

    With no partition installed every pair of nodes can communicate.
    Installing one (:meth:`split`) blocks cross-group traffic until
    :meth:`heal` is called.  Nodes not named in any group form an
    implicit extra group (fully isolated from all named groups).
    """

    def __init__(self):
        self._group_of = None  # name -> group index, or None when healed

    @property
    def active(self):
        return self._group_of is not None

    def split(self, *groups):
        """Partition the network into the given groups of node names."""
        seen = set()
        group_of = {}
        for index, group in enumerate(groups):
            for name in group:
                if name in seen:
                    raise ValueError("node %r appears in two groups" % (name,))
                seen.add(name)
                group_of[name] = index
        self._group_of = group_of

    def heal(self):
        """Remove the partition; all traffic flows again."""
        self._group_of = None

    def connected(self, src, dst):
        """May a message travel from ``src`` to ``dst`` right now?"""
        if self._group_of is None:
            return True
        # Unnamed nodes get a unique implicit group: isolated from everyone.
        src_group = self._group_of.get(src, ("isolated", src))
        dst_group = self._group_of.get(dst, ("isolated", dst))
        return src_group == dst_group

    def isolate(self, name, others):
        """Convenience: put ``name`` alone on one side of a split."""
        self.split([name], [n for n in others if n != name])
