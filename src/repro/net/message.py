"""Message base type and envelope used by the simulated network.

Protocols define their own message dataclasses; the only contract the
transport needs is :class:`Message`'s ``mtype`` (used for handler
dispatch) and a rough ``size_estimate`` (used for byte accounting).

Both are served from per-class caches: ``mtype`` is stamped onto each
subclass at class-definition time, and the field plan behind
``size_estimate`` is computed once per class on first use — the send
path never re-derives either per message.
"""

from dataclasses import dataclass, fields
from operator import attrgetter


class Message:
    """Base class for protocol messages.

    Subclasses are typically ``@dataclass``-decorated.  ``mtype`` defaults
    to the lower-cased class name, which the node base class uses to
    dispatch to ``handle_<mtype>`` methods; it is computed once when the
    subclass is defined (a subclass may still pin its own ``mtype`` class
    attribute explicitly).
    """

    mtype = "message"

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        if "mtype" not in cls.__dict__:
            cls.mtype = cls.__name__.lower()

    def size_estimate(self):
        """Approximate wire size in bytes, for message-complexity metrics.

        A crude per-field costing is plenty: the experiments compare
        *orders* of traffic (O(N) vs O(N²)), not absolute bytes.  The
        field-name plan is resolved once per class (``dataclasses.fields``
        is far too slow to walk per message); only the per-field value
        costing runs per call.
        """
        cls = type(self)
        plan = cls.__dict__.get("_size_plan")
        if plan is None:
            names = tuple(f.name for f in fields(self))
            # attrgetter fetches every field in one C call; a 1-field
            # getter returns a bare value, so wrap to keep a tuple.
            if len(names) == 1:
                single = attrgetter(names[0])
                plan = lambda msg: (single(msg),)  # noqa: E731
            elif names:
                plan = attrgetter(*names)
            else:
                plan = lambda msg: ()  # noqa: E731
            cls._size_plan = plan
        total = 16  # header
        scalar_sizes = _SCALAR_SIZES
        for value in plan(self):
            value_cls = value.__class__
            size = scalar_sizes.get(value_cls)
            if size is not None:
                total += size
            elif value_cls is str or value_cls is bytes:
                total += len(value)
            else:
                total += _field_size(value)
        return total


#: Per-class memo for :func:`protocol_of` — one ``rsplit`` per message
#: *class* instead of one per send.
_PROTOCOL_OF = {}


def protocol_of(message):
    """Telemetry's ``protocol`` label for a message: the leaf module the
    message class was defined in (``repro.protocols.paxos`` → ``paxos``).

    Deterministic, needs no per-message opt-in, and groups each
    protocol's whole vocabulary under one label; shared/base messages
    land under their defining module (e.g. ``message``).
    """
    cls = type(message)
    protocol = _PROTOCOL_OF.get(cls)
    if protocol is None:
        protocol = cls.__module__.rsplit(".", 1)[-1]
        _PROTOCOL_OF[cls] = protocol
    return protocol


#: Exact-type size shortcut for the overwhelmingly common field types —
#: one dict hit instead of an ``isinstance`` ladder.  Exact-type lookup
#: keeps ``bool`` (a subclass of ``int``) on its own entry; subclasses of
#: these types fall through to :func:`_field_size`.
_SCALAR_SIZES = {
    type(None): 1,
    bool: 1,
    int: 8,
    float: 8,
}


def _field_size(value):
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, (bytes, str)):
        return len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return 4 + sum(_field_size(item) for item in value)
    if isinstance(value, dict):
        return 4 + sum(
            _field_size(key) + _field_size(val) for key, val in value.items()
        )
    return 32  # opaque object (signature, certificate, ...)


@dataclass(frozen=True)
class Envelope:
    """A message in flight: who sent it, to whom, and when it departs/arrives."""

    src: str
    dst: str
    message: Message
    sent_at: float
    deliver_at: float

    @property
    def latency(self):
        return self.deliver_at - self.sent_at
