"""Message base type and envelope used by the simulated network.

Protocols define their own message dataclasses; the only contract the
transport needs is :class:`Message`'s ``mtype`` (used for handler
dispatch) and a rough ``size_estimate`` (used for byte accounting).
"""

from dataclasses import dataclass, fields


class Message:
    """Base class for protocol messages.

    Subclasses are typically ``@dataclass``-decorated.  ``mtype`` defaults
    to the lower-cased class name, which the node base class uses to
    dispatch to ``handle_<mtype>`` methods.
    """

    @property
    def mtype(self):
        return type(self).__name__.lower()

    def size_estimate(self):
        """Approximate wire size in bytes, for message-complexity metrics.

        A crude per-field costing is plenty: the experiments compare
        *orders* of traffic (O(N) vs O(N²)), not absolute bytes.
        """
        total = 16  # header
        for field in fields(self):
            value = getattr(self, field.name)
            total += _field_size(value)
        return total


def protocol_of(message):
    """Telemetry's ``protocol`` label for a message: the leaf module the
    message class was defined in (``repro.protocols.paxos`` → ``paxos``).

    Deterministic, needs no per-message opt-in, and groups each
    protocol's whole vocabulary under one label; shared/base messages
    land under their defining module (e.g. ``message``).
    """
    return type(message).__module__.rsplit(".", 1)[-1]


def _field_size(value):
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, (bytes, str)):
        return len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return 4 + sum(_field_size(item) for item in value)
    if isinstance(value, dict):
        return 4 + sum(
            _field_size(key) + _field_size(val) for key, val in value.items()
        )
    return 32  # opaque object (signature, certificate, ...)


@dataclass(frozen=True)
class Envelope:
    """A message in flight: who sent it, to whom, and when it departs/arrives."""

    src: str
    dst: str
    message: Message
    sent_at: float
    deliver_at: float

    @property
    def latency(self):
        return self.deliver_at - self.sent_at
