"""Delivery models for the paper's three synchrony modes.

The tutorial's first taxonomy aspect is the synchrony mode:

* **synchronous** — known bounds on message delay; communication proceeds
  in rounds,
* **asynchronous** — no bound at all; only eventual delivery,
* **partially synchronous** — asynchronous until an unknown global
  stabilisation time (GST), bounded afterwards (the datacenter model
  every practical protocol assumes).

A delivery model answers one question for the transport: *given this
envelope, when does it arrive (or does it drop)?*  All randomness comes
from the simulator's seeded RNG.
"""


class DeliveryModel:
    """Decides per-message delivery delay.  Subclass and override
    :meth:`delay`."""

    #: sentinel returned by :meth:`delay` for a dropped message
    DROP = None

    def delay(self, rng, src, dst, now):
        """Return the transit delay for a message, or :data:`DROP`."""
        raise NotImplementedError

    def describe(self):
        return type(self).__name__


class SynchronousModel(DeliveryModel):
    """Known delay bound: every message arrives in exactly ``step`` time.

    With a constant delay, sends made within one "round" all arrive
    before any reply can be produced — the lock-step round structure the
    paper describes for synchronous systems.
    """

    def __init__(self, step=1.0):
        if step <= 0:
            raise ValueError("step must be positive")
        self.step = step

    def delay(self, rng, src, dst, now):
        return self.step


class UniformDelayModel(DeliveryModel):
    """Bounded-but-variable delay, uniform in ``[low, high]``.

    Still synchronous in the formal sense (the bound ``high`` is known),
    but enough jitter to reorder messages — useful for exercising paths
    that constant delay never reaches.
    """

    def __init__(self, low=0.5, high=1.5, drop_rate=0.0):
        if not 0 < low <= high:
            raise ValueError("need 0 < low <= high")
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError("drop_rate must be in [0, 1)")
        self.low = low
        self.high = high
        self.drop_rate = drop_rate
        # Pre-computed span for the inlined uniform draw below.
        self._span = high - low

    def delay(self, rng, src, dst, now):
        if self.drop_rate and rng.random() < self.drop_rate:
            return self.DROP
        # Inlined ``rng.uniform(low, high)``: the same arithmetic CPython's
        # Random.uniform performs (``a + (b - a) * random()``), so the
        # draw is bit-identical — minus one call frame on the per-message
        # hot path.
        return self.low + self._span * rng.random()


class QueuedDelayModel(UniformDelayModel):
    """Uniform wire delay plus finite per-destination ingress capacity.

    Every other model here has infinite service capacity: a node can
    absorb any number of simultaneous messages, so offered load never
    produces queueing and latency-vs-load curves stay flat.  Real
    replicas deserialise and process one message at a time; under the
    paper's complexity tables that per-node ingest cost is exactly what
    separates O(n) leader-based protocols from O(n²) BFT broadcast at
    high load.

    This model gives each destination a FIFO ingress server that takes
    ``service`` time units per message.  A message leaving the wire at
    ``now + wire`` starts service when the destination's server frees
    up, whichever is later — the standard M/D/1 shape, so a load sweep
    produces a genuine saturation knee once arrivals outpace
    ``1/service`` per destination.

    Drops (if configured) happen on the wire, before the queue.  State
    is per-instance, so each cluster owns its own queues; determinism
    is preserved because arrival order at :meth:`delay` is itself
    deterministic under the seeded simulator.
    """

    def __init__(self, low=0.5, high=1.5, drop_rate=0.0, service=0.05):
        super().__init__(low, high, drop_rate)
        if service <= 0:
            raise ValueError("service must be positive")
        self.service = service
        self._busy = {}  # dst -> virtual time its ingress server frees up

    def delay(self, rng, src, dst, now):
        wire = super().delay(rng, src, dst, now)
        if wire is self.DROP:
            return self.DROP
        arrival = now + wire
        start = max(arrival, self._busy.get(dst, 0.0))
        done = start + self.service
        self._busy[dst] = done
        return done - now

    def queue_depth(self, dst, now):
        """Backlog (in service slots) at ``dst``'s ingress server."""
        backlog = self._busy.get(dst, 0.0) - now
        return max(0.0, backlog) / self.service


class AsynchronousModel(DeliveryModel):
    """No delay bound: exponential delays with an occasional heavy tail.

    True asynchrony (arbitrary finite delay) is approximated by an
    exponential base delay plus, with probability ``tail_prob``, a long
    tail multiplier — so a small fraction of messages straggle far beyond
    any "typical" bound, which is exactly the adversary FLP needs.
    """

    def __init__(self, mean=1.0, tail_prob=0.05, tail_factor=20.0, drop_rate=0.0):
        if mean <= 0:
            raise ValueError("mean must be positive")
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError("drop_rate must be in [0, 1)")
        self.mean = mean
        self.tail_prob = tail_prob
        self.tail_factor = tail_factor
        self.drop_rate = drop_rate

    def delay(self, rng, src, dst, now):
        if self.drop_rate and rng.random() < self.drop_rate:
            return self.DROP
        base = rng.expovariate(1.0 / self.mean)
        if self.tail_prob and rng.random() < self.tail_prob:
            base *= self.tail_factor
        return base


class PartialSynchronyModel(DeliveryModel):
    """Asynchronous before GST, bounded after — Dwork/Lynch/Stockmeyer's
    model, and the paper's 'reasonable in data centers' assumption.

    Parameters
    ----------
    gst:
        Global stabilisation time (virtual).  Before it, delays follow
        the wrapped asynchronous model; at/after it, delays are uniform
        in ``[post_low, post_high]``.
    """

    def __init__(self, gst, pre=None, post_low=0.5, post_high=1.0):
        self.gst = gst
        self.pre = pre if pre is not None else AsynchronousModel(mean=3.0)
        self.post = UniformDelayModel(post_low, post_high)

    def delay(self, rng, src, dst, now):
        if now < self.gst:
            return self.pre.delay(rng, src, dst, now)
        return self.post.delay(rng, src, dst, now)


class PerLinkModel(DeliveryModel):
    """Compose different models per (src, dst) link, with a default.

    Used by the hybrid-cloud experiments (SeeMoRe): links inside the
    private cloud are fast, cross-cloud links are slow.
    """

    def __init__(self, default, overrides=None):
        self.default = default
        self.overrides = dict(overrides or {})

    def set_link(self, src, dst, model):
        self.overrides[(src, dst)] = model

    def delay(self, rng, src, dst, now):
        model = self.overrides.get((src, dst), self.default)
        return model.delay(rng, src, dst, now)
