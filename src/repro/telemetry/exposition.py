"""Prometheus text exposition for a :class:`MetricsRegistry`.

The output follows the text-based exposition format (``# TYPE`` lines,
``name{label="value"} sample`` lines, histogram ``_bucket``/``_sum``/
``_count`` expansion with a ``+Inf`` bucket) closely enough that a real
Prometheus or ``promtool`` can scrape a dumped file.  Series are walked
in the registry's sorted order and label values are rendered with
escaping, so two same-seed runs produce byte-identical expositions.
"""

from ..ioutil import ensure_parent


def _escape(value):
    return (str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels_text(labels, extra=()):
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    body = ",".join('%s="%s"' % (key, _escape(val))
                    for key, val in sorted(pairs))
    return "{%s}" % body


def _number(value):
    if value is None:
        return "NaN"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return "%d" % int(value)
        return repr(value)
    return "%d" % value


def to_prometheus(registry):
    """Render every series in ``registry`` as Prometheus exposition text.

    Returns a string ending in a newline (or the empty string for an
    empty registry).
    """
    lines = []
    typed = set()
    for name, labels, instrument in registry.series():
        if name not in typed:
            typed.add(name)
            lines.append("# TYPE %s %s" % (name, instrument.kind))
        if instrument.kind == "histogram":
            cumulative = 0
            for bound, count in zip(instrument.buckets, instrument.counts):
                cumulative += count
                lines.append("%s_bucket%s %d" % (
                    name, _labels_text(labels, [("le", _number(bound))]),
                    cumulative,
                ))
            cumulative += instrument.counts[-1]
            lines.append("%s_bucket%s %d" % (
                name, _labels_text(labels, [("le", "+Inf")]), cumulative))
            lines.append("%s_sum%s %s" % (name, _labels_text(labels),
                                          _number(instrument.sum)))
            lines.append("%s_count%s %d" % (name, _labels_text(labels),
                                            instrument.count))
        else:
            lines.append("%s%s %s" % (name, _labels_text(labels),
                                      _number(instrument.value)))
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def write_prometheus(registry, path):
    """Write the exposition to ``path``; returns the series count."""
    payload = to_prometheus(registry)
    with open(ensure_parent(path), "w", encoding="utf-8",
              newline="\n") as handle:
        handle.write(payload)
    return len(registry)
