"""CI perf gate: fail the build when the hot paths regress.

``evaluate_gate(baseline, current)`` compares two bench snapshots
(``BENCH_consensus.json`` documents or their ``benches`` dicts) and
returns a list of failure strings — empty means the gate passes.  Two
families of checks:

* **Throughput regression** — every ``*_events_per_sec`` /
  ``*_msgs_per_sec`` rate in the gated experiments (E23 throughput,
  E24 monitor overhead, E26 parallel scaling, E27 span-derivation
  overhead, E28 load-engine sweep rates — E26's
  ``fleet_wK_events_per_sec`` critical-path rates plus their
  per-worker-normalized ``fleet_wK_norm_events_per_sec`` twins, so a
  barrier-overhead regression trips the gate even if raw scaling still
  clears the bench floor) must stay within ``max_regression`` (default
  20%) of the baseline.  Rates present in only one snapshot are
  skipped: the gate compares, it does not demand coverage.  Rates are
  also skipped when one snapshot is quick-mode and the other is not —
  quick workloads are smaller, so their rates are a different
  measurement, while overhead *ratios* stay comparable across modes
  (and across machines, which is why CI can gate them at all).
* **Observability overhead** — every ``*_overhead_x`` ratio in the
  current E24/E27 entries must stay at or below ``max_overhead``
  (default 2.5x): monitoring must remain a streaming pass (not a
  re-simulation), and span derivation (E27) a cheap post-run sweep
  over the trace — measured at ~1.2x, gated with the same headroom.
  Ring recording alone costs ~1.4x in pure Python and the measured
  batteries land at ~1.4x (multi-paxos) to ~1.9x (pbft, whose quorum
  certificates make it ack-heavy), so the cap gates regressions back
  toward the 3.4x-class overheads this subsystem eliminated, with
  headroom for scheduler noise.

The module doubles as a CLI for the workflow job::

    python -m repro.telemetry.perfgate BASELINE.json CURRENT.json

exits 0 when clean and 1 listing every violation.  ``--self-test
SNAPSHOT`` proves the gate actually trips: it injects a synthetic 25%
throughput regression (and a doubled overhead) into a copy of the
snapshot and exits 0 only if the gate *fails* on it.

Wall-clock rates vary across machines, so the default tolerance is
deliberately loose; tighten or loosen per-runner with the CLI flags.
"""

import argparse
import json
import sys

#: Experiments whose rates the gate defends.
GATED_EXPERIMENTS = ("E23_throughput", "E24_monitor_overhead",
                     "E26_parallel_scaling", "E27_span_overhead",
                     "E28_load_knee")

#: Rate-key suffixes compared between baseline and current.
RATE_SUFFIXES = ("_events_per_sec", "_msgs_per_sec")

#: Overhead-ratio key suffix capped in the current snapshot.
OVERHEAD_SUFFIX = "_overhead_x"

DEFAULT_MAX_REGRESSION = 0.20
DEFAULT_MAX_OVERHEAD = 2.5


def _benches(snapshot):
    """Accept a full snapshot document or a bare benches dict."""
    if isinstance(snapshot, dict) and isinstance(snapshot.get("benches"),
                                                 dict):
        return snapshot["benches"]
    return snapshot if isinstance(snapshot, dict) else {}


def _is_rate(key):
    return any(key.endswith(suffix) for suffix in RATE_SUFFIXES)


def evaluate_gate(baseline, current,
                  max_regression=DEFAULT_MAX_REGRESSION,
                  max_overhead=DEFAULT_MAX_OVERHEAD):
    """Compare two bench snapshots; return failure strings (empty=pass).

    Pure function of its inputs — the CLI and tests call it with parsed
    documents, never touching the filesystem here.
    """
    baseline = _benches(baseline)
    current = _benches(current)
    failures = []
    for experiment in GATED_EXPERIMENTS:
        base_entry = baseline.get(experiment) or {}
        cur_entry = current.get(experiment) or {}
        rates_comparable = \
            base_entry.get("quick") == cur_entry.get("quick")
        for key in sorted(base_entry):
            if not _is_rate(key) or not rates_comparable:
                continue
            base_rate = base_entry[key]
            cur_rate = cur_entry.get(key)
            if not isinstance(base_rate, (int, float)) or \
                    not isinstance(cur_rate, (int, float)) or base_rate <= 0:
                continue
            floor = base_rate * (1.0 - max_regression)
            if cur_rate < floor:
                failures.append(
                    "%s.%s regressed %.1f%%: %.0f -> %.0f (floor %.0f at "
                    "-%d%%)" % (experiment, key,
                                100.0 * (1.0 - cur_rate / base_rate),
                                base_rate, cur_rate, floor,
                                round(100 * max_regression)))
        for key in sorted(cur_entry):
            if not key.endswith(OVERHEAD_SUFFIX):
                continue
            ratio = cur_entry[key]
            if isinstance(ratio, (int, float)) and ratio > max_overhead:
                failures.append(
                    "%s.%s is %.2fx, above the %.2fx cap — monitoring "
                    "must stay near-free" % (experiment, key, ratio,
                                             max_overhead))
    return failures


def _inject_regression(benches, factor=0.75):
    """A copy of ``benches`` with every gated rate scaled by ``factor``
    and every overhead ratio scaled by ``1/factor`` — the synthetic
    regression the self-test proves the gate catches."""
    regressed = {}
    for experiment, entry in benches.items():
        if experiment not in GATED_EXPERIMENTS or \
                not isinstance(entry, dict):
            regressed[experiment] = entry
            continue
        copy = dict(entry)
        for key, value in entry.items():
            if _is_rate(key) and isinstance(value, (int, float)):
                copy[key] = value * factor
            elif key.endswith(OVERHEAD_SUFFIX) and \
                    isinstance(value, (int, float)):
                copy[key] = value / factor
        regressed[experiment] = copy
    return regressed


def _load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.perfgate",
        description="fail (exit 1) when bench rates regress past the "
                    "tolerance or monitor overhead exceeds the cap")
    parser.add_argument("baseline", help="baseline BENCH_consensus.json")
    parser.add_argument("current", nargs="?", default=None,
                        help="current snapshot (required unless "
                             "--self-test)")
    parser.add_argument("--max-regression", type=float,
                        default=DEFAULT_MAX_REGRESSION,
                        help="throughput tolerance as a fraction "
                             "(default %(default)s = 20%%)")
    parser.add_argument("--max-overhead", type=float,
                        default=DEFAULT_MAX_OVERHEAD,
                        help="monitors-on overhead cap (default "
                             "%(default)sx)")
    parser.add_argument("--self-test", action="store_true",
                        help="inject a synthetic 25%% regression into "
                             "the baseline and exit 0 only if the gate "
                             "fails on it")
    args = parser.parse_args(argv)
    baseline = _benches(_load(args.baseline))
    if args.self_test:
        regressed = _inject_regression(baseline)
        failures = evaluate_gate(baseline, regressed,
                                 max_regression=args.max_regression,
                                 max_overhead=args.max_overhead)
        if failures:
            print("self-test: gate trips on the injected 25%% regression "
                  "(%d violation(s)) — OK" % len(failures))
            for failure in failures[:5]:
                print("  %s" % failure)
            return 0
        print("self-test: gate FAILED to trip on an injected 25% "
              "regression — the gate is not protecting anything")
        return 1
    if args.current is None:
        parser.error("current snapshot required unless --self-test")
    failures = evaluate_gate(baseline, _benches(_load(args.current)),
                             max_regression=args.max_regression,
                             max_overhead=args.max_overhead)
    if failures:
        print("perf gate: %d violation(s)" % len(failures))
        for failure in failures:
            print("  %s" % failure)
        return 1
    print("perf gate: clean (tolerance -%d%% throughput, %.2fx overhead "
          "cap)" % (round(100 * args.max_regression), args.max_overhead))
    return 0


if __name__ == "__main__":
    sys.exit(main())
