"""Deterministic JSON "run report" — the machine-readable run artifact.

One JSON document per run: the flat collector snapshot plus every
registry series (counters/gauges by value, histograms by summary and
bucket counts).  Like the trace JSONL, the format is deliberately
boring — sorted keys, compact separators, ``\\n`` ending — and every
number derives deterministically from the simulation, so two same-seed
runs serialise to *byte-identical* output.  That is what the CI
determinism gate diffs and what a perf-trend dashboard can ingest.
"""

import json

from ..ioutil import ensure_parent
from .instruments import _finite


def series_to_dict(name, labels, instrument):
    """Plain-dict form of one registry series."""
    entry = {
        "name": name,
        "labels": {key: str(value) for key, value in labels},
        "kind": instrument.kind,
    }
    if instrument.kind == "histogram":
        entry["summary"] = instrument.summary()
        entry["buckets"] = [
            {"le": bound, "count": count}
            for bound, count in zip(instrument.buckets, instrument.counts)
        ] + [{"le": "+Inf", "count": instrument.counts[-1]}]
    else:
        entry["value"] = _finite(instrument.value)
    return entry


def run_report(registry, collector=None, protocol="", seed=None,
               virtual_time=None, extra=None):
    """Assemble the full run report as a plain dict.

    Parameters
    ----------
    registry:
        The :class:`~repro.telemetry.MetricsRegistry` recorded during
        the run.
    collector:
        Optional :class:`~repro.metrics.MetricsCollector`; its
        ``snapshot()`` becomes the report's ``summary`` block.
    protocol / seed / virtual_time:
        Run identity, echoed into the report header.
    extra:
        Optional dict of caller-supplied headline numbers.
    """
    report = {
        "schema": "repro.telemetry.run_report/1",
        "protocol": str(protocol),
        "seed": seed,
        "virtual_time": _finite(virtual_time),
        "series": [series_to_dict(name, labels, instrument)
                   for name, labels, instrument in registry.series()],
    }
    if collector is not None:
        report["summary"] = collector.snapshot()
    if extra:
        report["extra"] = dict(extra)
    return report


def report_to_json(report):
    """Serialise a report dict to its canonical byte-stable JSON string."""
    return json.dumps(report, sort_keys=True,
                      separators=(",", ":")) + "\n"


def write_report(report, path):
    """Write the canonical JSON to ``path``; returns the series count."""
    payload = report_to_json(report)
    with open(ensure_parent(path), "w", encoding="utf-8",
              newline="\n") as handle:
        handle.write(payload)
    return len(report.get("series", ()))
