"""The three instrument kinds plus their zero-cost no-op twins.

A :class:`Counter` only goes up, a :class:`Gauge` tracks a level, and a
:class:`Histogram` buckets observations so quantiles, means and maxima
can be reported without storing every sample.  Each class has a ``Null*``
twin whose methods do nothing; :data:`~repro.telemetry.NULL_REGISTRY`
hands those out so an un-instrumented run pays one attribute load and a
no-op call at most — the same opt-in contract the tracer follows.

Everything recorded here is derived deterministically from the
simulation (virtual times, message counts), and nothing touches the
simulator's RNG or schedules events, so enabling telemetry cannot
perturb a run and same-seed runs produce identical instrument state.
"""

import math

#: Default histogram bucket upper bounds, in virtual-time units (message
#: delays).  Roughly exponential: fine resolution around a handful of
#: one-way delays (where consensus decisions live), coarse out to the
#: timeout/view-change regime.
DEFAULT_BUCKETS = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                   256.0, 512.0, 1024.0)


class Counter:
    """Monotonically increasing count (messages sent, events fired)."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counters only go up (amount=%r)" % (amount,))
        self.value += amount

    def __repr__(self):
        return "Counter(%r)" % (self.value,)


class Gauge:
    """A level that can move both ways (queue depth, open requests)."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self):
        self.value = 0

    def set(self, value):
        self.value = value

    def inc(self, amount=1):
        self.value += amount

    def dec(self, amount=1):
        self.value -= amount

    def __repr__(self):
        return "Gauge(%r)" % (self.value,)


class Histogram:
    """Fixed-bucket distribution with quantile/mean/max summaries.

    Parameters
    ----------
    buckets:
        Ascending upper bounds.  An implicit +inf bucket catches the
        overflow, so any observation lands somewhere.
    """

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    kind = "histogram"

    def __init__(self, buckets=DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly ascending")
        if not bounds:
            raise ValueError("need at least one bucket bound")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +inf bucket
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self):
        if self.count == 0:
            return None
        return self.sum / self.count

    def quantile(self, q):
        """Estimate the ``q``-quantile (0 <= q <= 1) from bucket counts.

        Linear interpolation inside the containing bucket, the standard
        Prometheus ``histogram_quantile`` estimate.  Returns ``None`` on
        an empty histogram; the overflow bucket reports the observed
        ``max`` (there is no upper edge to interpolate toward, and the
        maximum is the only finite, report-stable bound for the tail).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1] (got %r)" % (q,))
        if self.count == 0:
            return None
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count > 0:
                if index >= len(self.buckets):  # overflow bucket
                    return self.max
                lower = self.buckets[index - 1] if index > 0 else 0.0
                upper = self.buckets[index]
                into = rank - (cumulative - bucket_count)
                fraction = into / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.max

    def summary(self):
        """Deterministic plain-dict digest used by reports and rendering."""
        return {
            "count": self.count,
            "sum": _finite(self.sum),
            "min": self.min,
            "max": self.max,
            "mean": _finite(self.mean),
            "p50": _finite(self.quantile(0.50)),
            "p90": _finite(self.quantile(0.90)),
            "p99": _finite(self.quantile(0.99)),
            "p999": _finite(self.quantile(0.999)),
        }

    def __repr__(self):
        return "Histogram(count=%d, mean=%s)" % (self.count, self.mean)


def _finite(value):
    """Round float summaries to 9 decimal places.

    Keeps the JSON run report byte-stable against accumulation-order
    noise while staying far below any resolution the experiments read.
    """
    if value is None:
        return None
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            return None
        return round(value, 9)
    return value


class NullCounter:
    """Does nothing; shared by every disabled counter.

    ``value`` is a no-op-setter property so hot paths that bump a cached
    real counter's ``value`` slot directly stay safe if handed the null
    twin instead.
    """

    __slots__ = ()

    kind = "counter"

    @property
    def value(self):
        return 0

    @value.setter
    def value(self, _new):
        pass

    def inc(self, amount=1):
        pass


class NullGauge:
    """Does nothing; shared by every disabled gauge."""

    __slots__ = ()

    kind = "gauge"

    @property
    def value(self):
        return 0

    @value.setter
    def value(self, _new):
        pass

    def set(self, value):
        pass

    def inc(self, amount=1):
        pass

    def dec(self, amount=1):
        pass


class NullHistogram:
    """Does nothing; shared by every disabled histogram."""

    __slots__ = ()

    kind = "histogram"
    count = 0
    sum = 0.0
    min = None
    max = None
    mean = None

    def observe(self, value):
        pass

    def quantile(self, q):
        return None

    def summary(self):
        return {"count": 0, "sum": 0.0, "min": None, "max": None,
                "mean": None, "p50": None, "p90": None, "p99": None,
                "p999": None}


#: Shared no-op instances — instruments carry no identity, so one of
#: each serves every disabled call site.
NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()
