"""ASCII rendering of a registry: counter tables and histogram bars.

The human half of the output story (the JSON run report is the machine
half): ``python -m repro stats`` prints this.  Counters are grouped by
instrument name with per-series breakdowns; histograms get a
count/mean/quantile digest plus a bucket bar chart.  Output depends
only on registry state, so it is as deterministic as the run itself.
"""

#: Bar width of the fullest histogram bucket, in characters.
BAR_WIDTH = 28

#: Max label breakdown rows shown per counter/gauge name.
MAX_SERIES_ROWS = 10


def _labels_key(labels):
    return " ".join("%s=%s" % (key, value) for key, value in sorted(labels))


def _fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return "%.3f" % value
    return str(value)


def render_histogram(instrument, width=BAR_WIDTH):
    """Bucket bar chart for one histogram, as a list of lines."""
    lines = []
    bounds = ["<=%g" % bound for bound in instrument.buckets] + ["+Inf"]
    counts = list(instrument.counts)
    # Trim trailing empty buckets (keeping at least one row).
    last = max((i for i, c in enumerate(counts) if c), default=0)
    bounds, counts = bounds[:last + 1], counts[:last + 1]
    label_width = max(len(b) for b in bounds)
    peak = max(counts) or 1
    for bound, count in zip(bounds, counts):
        bar = "#" * int(round(width * count / peak)) if count else ""
        lines.append("    %-*s |%-*s| %d" % (label_width, bound,
                                             width, bar, count))
    return lines


def render_summary(registry, title=None):
    """Render every series in ``registry`` as an ASCII report string."""
    scalar_by_name = {}
    histograms = []
    for name, labels, instrument in registry.series():
        if instrument.kind == "histogram":
            histograms.append((name, labels, instrument))
        else:
            scalar_by_name.setdefault(name, []).append((labels, instrument))

    lines = []
    if title:
        lines.append("== %s ==" % title)
        lines.append("")

    if scalar_by_name:
        lines.append("counters/gauges")
        for name in sorted(scalar_by_name):
            series = scalar_by_name[name]
            total = sum(instrument.value for _labels, instrument in series)
            lines.append("  %-44s %10s" % (name, _fmt(total)))
            labelled = [(labels, inst) for labels, inst in series if labels]
            ranked = sorted(labelled,
                            key=lambda item: (-item[1].value,
                                              _labels_key(item[0])))
            for labels, instrument in ranked[:MAX_SERIES_ROWS]:
                lines.append("    %-42s %10s" % (_labels_key(labels),
                                                 _fmt(instrument.value)))
            hidden = len(ranked) - MAX_SERIES_ROWS
            if hidden > 0:
                lines.append("    ... (+%d more series)" % hidden)
        lines.append("")

    if histograms:
        lines.append("histograms")
        for name, labels, instrument in histograms:
            suffix = "{%s}" % _labels_key(labels) if labels else ""
            lines.append("  %s%s" % (name, suffix))
            digest = instrument.summary()
            lines.append(
                "    count=%s sum=%s mean=%s p50=%s p90=%s p99=%s p999=%s"
                " max=%s"
                % tuple(_fmt(digest[key]) for key in
                        ("count", "sum", "mean", "p50", "p90", "p99", "p999",
                         "max"))
            )
            if instrument.count:
                lines.extend(render_histogram(instrument))
        lines.append("")

    if not scalar_by_name and not histograms:
        lines.append("(no telemetry series recorded)")
    return "\n".join(lines).rstrip("\n")
