"""The :class:`MetricsRegistry`: labeled instruments behind one lookup.

A *series* is an instrument name plus a sorted tuple of ``(label,
value)`` pairs — ``net_messages_total{mtype="prepare", protocol=
"paxos"}`` — exactly the Prometheus data model, scaled down to a
single-process simulator.  The registry interns one instrument per
series; asking again with the same name and labels returns the same
object, so hot paths may cache the handle or re-look it up, whichever
reads better.

:class:`NullRegistry` is the disabled twin: every request returns the
shared no-op instrument, allocations and bookkeeping included — zero
cost beyond the call itself.  Components hold either a real registry or
``None`` and guard with ``if telemetry is not None``, mirroring the
tracer's opt-in design.
"""

from .instruments import (
    DEFAULT_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
)


#: Instrument factories behind :meth:`MetricsRegistry.handle`'s ``kind``.
_HANDLE_FACTORIES = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}

#: :meth:`NullRegistry.handle`'s no-op twins, by ``kind``.
_NULL_HANDLES = {
    "counter": NULL_COUNTER,
    "gauge": NULL_GAUGE,
    "histogram": NULL_HISTOGRAM,
}


class MetricsRegistry:
    """Home of every labeled instrument recorded during one run."""

    def __init__(self):
        self._series = {}

    # -- instrument lookup/creation ----------------------------------------

    def _get(self, name, labels, factory):
        key = (name, tuple(sorted(labels.items())))
        instrument = self._series.get(key)
        if instrument is None:
            instrument = factory()
            self._series[key] = instrument
        return instrument

    def counter(self, name, **labels):
        """The counter for ``name`` + ``labels``, created on first use."""
        return self._get(name, labels, Counter)

    def gauge(self, name, **labels):
        """The gauge for ``name`` + ``labels``, created on first use."""
        return self._get(name, labels, Gauge)

    def histogram(self, name, buckets=DEFAULT_BUCKETS, **labels):
        """The histogram for ``name`` + ``labels``, created on first use.

        ``buckets`` only applies on creation; later lookups return the
        existing instrument regardless.
        """
        return self._get(name, labels, lambda: Histogram(buckets))

    def handle(self, kind, name, **labels):
        """Resolve-once fast-path lookup: the instrument for ``name`` +
        ``labels``, created on first use.

        ``kind`` is ``"counter"``, ``"gauge"`` or ``"histogram"``.  Hot
        paths (the network send loop, the event loop) call this once per
        series, keep the returned handle, and thereafter pay only the
        ``.inc()``/``.observe()`` — no label-dict rebuild, no sort, no
        registry re-hash per record.  The handle stays valid for the
        registry's lifetime: series are interned and never dropped.
        """
        try:
            factory = _HANDLE_FACTORIES[kind]
        except KeyError:
            raise ValueError(
                "unknown instrument kind %r (want counter/gauge/histogram)"
                % (kind,)
            ) from None
        return self._get(name, labels, factory)

    # -- introspection -----------------------------------------------------

    def series(self):
        """All ``(name, labels, instrument)`` triples, sorted by name then
        labels — the deterministic order every exporter walks."""
        return [
            (name, labels, instrument)
            for (name, labels), instrument in sorted(
                self._series.items(), key=lambda item: item[0]
            )
        ]

    def get(self, name, **labels):
        """The instrument for an existing series, or ``None``."""
        return self._series.get((name, tuple(sorted(labels.items()))))

    def value(self, name, **labels):
        """Convenience: the counter/gauge value for a series (0 when the
        series was never recorded)."""
        instrument = self.get(name, **labels)
        return 0 if instrument is None else instrument.value

    def total(self, name):
        """Sum of ``value`` across every series of ``name`` (counters and
        gauges)."""
        return sum(
            instrument.value
            for (series_name, _labels), instrument in self._series.items()
            if series_name == name and instrument.kind != "histogram"
        )

    def names(self):
        """Distinct instrument names, sorted."""
        return sorted({name for name, _labels in self._series})

    def __len__(self):
        return len(self._series)

    def __repr__(self):
        return "MetricsRegistry(%d series)" % len(self._series)


class NullRegistry:
    """Disabled registry: hands out shared no-op instruments."""

    def counter(self, name, **labels):
        return NULL_COUNTER

    def gauge(self, name, **labels):
        return NULL_GAUGE

    def histogram(self, name, buckets=DEFAULT_BUCKETS, **labels):
        return NULL_HISTOGRAM

    def handle(self, kind, name, **labels):
        try:
            return _NULL_HANDLES[kind]
        except KeyError:
            raise ValueError(
                "unknown instrument kind %r (want counter/gauge/histogram)"
                % (kind,)
            ) from None

    def series(self):
        return []

    def get(self, name, **labels):
        return None

    def value(self, name, **labels):
        return 0

    def total(self, name):
        return 0

    def names(self):
        return []

    def __len__(self):
        return 0

    def __repr__(self):
        return "NullRegistry()"


#: Shared disabled registry — the default collaborator wherever telemetry
#: was not explicitly enabled.
NULL_REGISTRY = NullRegistry()
