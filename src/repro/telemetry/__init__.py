"""Telemetry: labeled metrics, latency histograms and run reports.

The measurement counterpart of :mod:`repro.trace`.  The tracer answers
"what happened, in what order"; this package answers "how much, how
fast, and is it regressing":

* :class:`MetricsRegistry` — labeled :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments, interned per ``(name, labels)``
  series.
* :data:`NULL_REGISTRY` — the disabled twin handing out shared no-op
  instruments, so an un-instrumented run pays nothing (the same opt-in
  contract as the tracer).
* :func:`to_prometheus` — Prometheus text exposition of a registry.
* :func:`run_report` / :func:`report_to_json` — the deterministic
  (same-seed byte-identical) JSON run artifact.
* :func:`render_summary` — the ASCII report behind
  ``python -m repro stats``.
* :func:`update_bench_snapshot` — the consolidated
  ``BENCH_consensus.json`` writer the benchmark suite feeds.

Enable per cluster with ``Cluster(telemetry=True)``; the registry then
hangs off ``cluster.telemetry`` and the substrate (network, simulator
timers, fault plans, metrics collector) records into it.
"""

from .bench import BENCH_FILENAME, load_bench_snapshot, update_bench_snapshot
from .exposition import to_prometheus, write_prometheus
from .instruments import (
    DEFAULT_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    NullCounter,
    NullGauge,
    NullHistogram,
)
from .registry import NULL_REGISTRY, MetricsRegistry, NullRegistry
from .render import render_histogram, render_summary
from .report import report_to_json, run_report, series_to_dict, write_report

__all__ = [
    "BENCH_FILENAME",
    "DEFAULT_BUCKETS",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullRegistry",
    "load_bench_snapshot",
    "render_histogram",
    "render_summary",
    "report_to_json",
    "run_report",
    "series_to_dict",
    "to_prometheus",
    "update_bench_snapshot",
    "write_prometheus",
    "write_report",
]
