"""Consolidated benchmark snapshot: ``BENCH_consensus.json``.

Every ``benchmarks/test_bench_*.py`` emits its headline numbers —
message totals, phase counts, fitted complexity exponents, mean
latencies — through :func:`update_bench_snapshot` into one JSON file at
the repository root.  Each bench owns one entry keyed by its experiment
id, and entries merge (read–update–write) so a partial benchmark run
refreshes only its own rows.  Sorted keys and rounded floats keep the
file diff-friendly: the perf trajectory future PRs regress against.
"""

import json
import pathlib

from ..ioutil import ensure_parent

#: Bench snapshot file name, expected at the repository root.
BENCH_FILENAME = "BENCH_consensus.json"

SCHEMA = "repro.telemetry.bench_snapshot/1"


def _clean(value):
    """Make ``value`` JSON-fit: round floats, stringify exotic types."""
    if isinstance(value, float):
        return round(value, 9)
    if isinstance(value, (int, str, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(key): _clean(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_clean(item) for item in value]
    return str(value)


def load_bench_snapshot(path):
    """The existing benches dict at ``path`` ({} when absent/corrupt)."""
    path = pathlib.Path(path)
    if not path.is_file():
        return {}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (ValueError, OSError):
        return {}
    benches = data.get("benches")
    return benches if isinstance(benches, dict) else {}


def update_bench_snapshot(path, bench_id, payload):
    """Merge one bench's headline numbers into the snapshot at ``path``.

    Returns the full benches dict after the update.
    """
    path = pathlib.Path(path)
    benches = load_bench_snapshot(path)
    benches[str(bench_id)] = _clean(dict(payload))
    document = {"schema": SCHEMA, "benches": benches}
    text = json.dumps(document, sort_keys=True, indent=2) + "\n"
    with open(ensure_parent(path), "w", encoding="utf-8",
              newline="\n") as handle:
        handle.write(text)
    return benches
