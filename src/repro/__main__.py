"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — every implemented protocol with its paper property box.
* ``run <protocol>`` — one live run of a protocol, with a summary.
* ``trace <protocol>`` — record a causal trace of one run and render it
  as an ASCII message-flow diagram (optionally exporting JSONL).
* ``stats <protocol>`` — one telemetry-instrumented run: labeled
  counters and latency histograms rendered as ASCII, optionally
  exported as a deterministic JSON run report and/or a Prometheus
  text exposition.
* ``check <protocol>`` — one run under live conformance monitors,
  cross-checked against the paper's property box; exits 0 when clean,
  1 on any anomaly, 2 on usage errors.
* ``profile`` — cProfile one run and print the hottest call sites.
* ``kv`` — interactive-ish replicated-KV demo (scripted operations).
* ``mine`` — a short PoW mining-network run with fork statistics.
* ``table`` — the measured-vs-paper comparison table (E1, abridged).
"""

import argparse
import sys
from pathlib import Path

from .analysis import claim_for, comparison_table, render_table
from .core import Cluster


def cmd_list(_args):
    import repro.protocols  # noqa: F401  (registers profiles)
    rows = comparison_table()
    print(render_table(rows, title="Implemented protocols"))
    return 0


def cmd_experiments(_args):
    from .analysis import generate_experiments_md
    from .analysis.report import EXPERIMENT_NOTES, bench_file_for, collect_results
    results_dir = Path("benchmarks/results")
    have = collect_results(results_dir) if results_dir.is_dir() else {}
    missing = sorted(set(EXPERIMENT_NOTES) - set(have),
                     key=lambda eid: int(eid[1:]))
    if missing:
        print("missing %d benchmark artifact(s) under %s — run the "
              "benches first:" % (len(missing), results_dir))
        for eid in missing:
            print("  %-4s  PYTHONPATH=src python -m pytest "
                  "benchmarks/%s -q" % (eid, bench_file_for(eid)))
        if not have:
            print("(nothing to assemble yet; EXPERIMENTS.md left untouched)")
            return 1
        print("assembling EXPERIMENTS.md from the %d artifact(s) present"
              % len(have))
    path, count = generate_experiments_md()
    print("wrote %s (%d experiments)" % (path, count))
    return 0


def cmd_table(_args):
    # Resolve benchmarks/ relative to the repository, not the cwd, so the
    # command works from anywhere; fall back to the cwd for installs where
    # the package lives outside a checkout.
    candidates = [
        Path(__file__).resolve().parents[2] / "benchmarks",
        Path.cwd() / "benchmarks",
    ]
    for bench_dir in candidates:
        if (bench_dir / "test_bench_property_table.py").is_file():
            if str(bench_dir) not in sys.path:
                sys.path.insert(0, str(bench_dir))
            break
    try:
        from test_bench_property_table import build_property_table
    except ImportError:
        print("cannot locate benchmarks/test_bench_property_table.py "
              "(looked in %s)" % ", ".join(str(c) for c in candidates))
        return 1
    print(render_table(build_property_table(),
                       title="Paper vs measured (E1)"))
    return 0


_RUNNERS = {}


def _runner(name):
    def register(fn):
        _RUNNERS[name] = fn
        return fn
    return register


@_runner("paxos")
def _run_paxos(cluster):
    from .protocols.paxos import run_basic_paxos
    result = run_basic_paxos(cluster, n_acceptors=5, proposals=("X", "Y"),
                             stagger=1.0)
    return "decided %r after %d proposer round(s)" % (result.value,
                                                      result.rounds)


@_runner("multi-paxos")
def _run_multipaxos(cluster):
    from .protocols.multipaxos import run_multipaxos
    result = run_multipaxos(cluster, n_replicas=5, commands_per_client=5)
    return "5 commands replicated; consistent=%s" % result.logs_consistent()


@_runner("raft")
def _run_raft(cluster):
    from .protocols.raft import run_raft
    result = run_raft(cluster, n_nodes=5, commands_per_client=5,
                      crash_leader_at=20.0)
    return "5 commands through a leader crash; consistent=%s" % \
        result.logs_consistent()


@_runner("pbft")
def _run_pbft(cluster):
    from .protocols.pbft import EquivocatingPrimary, run_pbft
    result = run_pbft(cluster, f=1, operations_per_client=3,
                      primary_class=EquivocatingPrimary)
    return "3 ops despite an equivocating primary; consistent=%s" % \
        result.logs_consistent()


@_runner("hotstuff")
def _run_hotstuff(cluster):
    from .protocols.hotstuff import run_chained_hotstuff
    result = run_chained_hotstuff(cluster, commands=6)
    return "6 commands pipelined; prefix-consistent=%s" % \
        result.logs_consistent()


@_runner("tendermint")
def _run_tendermint(cluster):
    from .protocols.tendermint import run_tendermint
    result = run_tendermint(cluster, heights=4)
    return "4 blocks; chains agree=%s" % result.chains_consistent()


@_runner("ben-or")
def _run_benor(cluster):
    from .protocols.benor import run_benor
    result = run_benor(cluster, n=5, f=1, crash_indices=(4,))
    return "decided %r in %d round(s) despite a crash" % (
        result.decided_values()[0], result.max_round())


@_runner("chandra-toueg")
def _run_ct(cluster):
    from .protocols.chandra_toueg import run_chandra_toueg
    result = run_chandra_toueg(cluster, n=5, f=2, crash_indices=(1,))
    return "decided %r via the failure-detector oracle" % \
        result.decided_values()[0]


@_runner("shards")
def _run_shards(cluster):
    from .shard import ShardedCluster
    sharded = ShardedCluster(n_shards=2, replicas=3, partitioning="range",
                             key_space=16, cluster=cluster)
    a, b = sharded.key(2), sharded.key(10)  # one key on each shard
    sharded.put(a, 100)
    sharded.put(b, 10)
    outcome = sharded.transfer(a, b, 30)  # cross-shard: the full 2PC path
    stats = sharded.stats()
    return ("2 shards x 3 replicas: cross-shard transfer %s; "
            "%d commits (%d fast-path), %d replicated decision(s)"
            % (outcome, stats["commits"], stats["fast_commits"],
               stats["decisions_replicated"]))


def _run_parallel_fleet(spec):
    """Run one partitioned fleet; returns ``(run, None)`` or
    ``(None, error-message)`` for the exit-1 path."""
    from .parallel import WorkerFailure, run_parallel_shards
    try:
        return run_parallel_shards(spec), None
    except WorkerFailure as exc:
        return None, str(exc)


def _reject_non_shards_workers(args):
    """``--workers`` partitions the sharded fleet; other protocols have
    no domain decomposition to partition."""
    if args.protocol != "shards":
        print("--workers applies to the sharded fleet only "
              "(use protocol 'shards')")
        return True
    return False


def _print_parallel_workload(run):
    from .parallel import merged_workload
    for index, segment in enumerate(merged_workload(run), 1):
        print("workload %d: %d/%d committed (%d cross-shard, %d fast-path)"
              " in %.1f virtual time"
              % (index, segment["committed"], segment["txns"],
                 segment["cross_shard"], segment["fast_commits"],
                 segment["virtual_time"]))


def cmd_run(args):
    runner = _RUNNERS.get(args.protocol)
    if runner is None:
        print("unknown or non-runnable protocol %r; choices: %s"
              % (args.protocol, ", ".join(sorted(_RUNNERS))))
        return 1
    cluster = Cluster(seed=args.seed)
    summary = runner(cluster)
    try:
        claim = claim_for(args.protocol)
        box = "nodes=%s phases=%s msgs=%s" % (claim.nodes, claim.phases,
                                              claim.complexity)
    except KeyError:
        box = "-"
    print("%s: %s" % (args.protocol, summary))
    print("paper box: %s | measured messages: %d | virtual time: %.1f"
          % (box, cluster.metrics.messages_total, cluster.now))
    return 0


def cmd_trace(args):
    from .trace import render_flow, write_jsonl
    if args.workers is not None:
        return _cmd_trace_parallel(args)
    runner = _RUNNERS.get(args.protocol)
    if runner is None:
        print("unknown or non-runnable protocol %r; choices: %s"
              % (args.protocol, ", ".join(sorted(_RUNNERS))))
        return 1
    cluster = Cluster(seed=args.seed, trace=True)
    summary = runner(cluster)
    trace = cluster.trace
    if args.jsonl:
        try:
            count = write_jsonl(trace, args.jsonl)
        except OSError as exc:
            print("cannot write %s: %s" % (args.jsonl, exc))
            return 1
        print("wrote %s (%d events)" % (args.jsonl, count))
    print(render_flow(trace, nodes=cluster.network.node_names,
                      max_rows=args.limit,
                      include_delivers=args.delivers,
                      include_timers=args.timers))
    print("%s: %s" % (args.protocol, summary))
    print("trace: %d events | messages: %d | virtual time: %.1f"
          % (len(trace), cluster.metrics.messages_total, cluster.now))
    return 0


def _cmd_trace_parallel(args):
    from .parallel import FleetSpec, merge_trace, merged_summary
    from .trace import render_flow, write_jsonl
    if _reject_non_shards_workers(args):
        return 2
    spec = FleetSpec(seed=args.seed, workers=args.workers, trace=True)
    run, error = _run_parallel_fleet(spec)
    if error is not None:
        print("PARALLEL RUN FAILED: %s" % error)
        return 1
    trace = merge_trace(run)
    if args.jsonl:
        try:
            count = write_jsonl(trace, args.jsonl)
        except OSError as exc:
            print("cannot write %s: %s" % (args.jsonl, exc))
            return 1
        print("wrote %s (%d events)" % (args.jsonl, count))
    print(render_flow(trace, nodes=spec.fleet_names() + ["driver"],
                      max_rows=args.limit,
                      include_delivers=args.delivers,
                      include_timers=args.timers))
    _print_parallel_workload(run)
    print("trace: %d events | messages: %d | virtual time: %.1f"
          " | %d worker(s), %d epochs"
          % (len(trace), merged_summary(run)["messages_total"],
             run.virtual_time, run.workers, run.epochs))
    return 0


def cmd_stats(args):
    from .telemetry import (
        render_summary,
        run_report,
        write_prometheus,
        write_report,
    )
    if args.workers is not None:
        return _cmd_stats_parallel(args)
    runner = _RUNNERS.get(args.protocol)
    if runner is None:
        print("unknown or non-runnable protocol %r; choices: %s"
              % (args.protocol, ", ".join(sorted(_RUNNERS))))
        return 1
    cluster = Cluster(seed=args.seed, telemetry=True)
    summary = runner(cluster)
    registry = cluster.telemetry
    report = run_report(registry, cluster.metrics, protocol=args.protocol,
                        seed=args.seed, virtual_time=cluster.now)
    if args.json:
        try:
            count = write_report(report, args.json)
        except OSError as exc:
            print("cannot write %s: %s" % (args.json, exc))
            return 1
        print("wrote %s (%d series)" % (args.json, count))
    if args.prom:
        try:
            count = write_prometheus(registry, args.prom)
        except OSError as exc:
            print("cannot write %s: %s" % (args.prom, exc))
            return 1
        print("wrote %s (%d series)" % (args.prom, count))
    print(render_summary(registry, title="%s (seed %d)" % (args.protocol,
                                                           args.seed)))
    print()
    print("%s: %s" % (args.protocol, summary))
    print("telemetry: %d series | messages: %d | virtual time: %.1f"
          % (len(registry), cluster.metrics.messages_total, cluster.now))
    return 0


def _cmd_stats_parallel(args):
    from .parallel import (
        FleetSpec,
        build_stats_report,
        merge_registry,
        merged_summary,
    )
    from .telemetry import render_summary, write_prometheus, write_report
    if _reject_non_shards_workers(args):
        return 2
    spec = FleetSpec(seed=args.seed, workers=args.workers, telemetry=True)
    run, error = _run_parallel_fleet(spec)
    if error is not None:
        print("PARALLEL RUN FAILED: %s" % error)
        return 1
    registry = merge_registry(run)
    report = build_stats_report(run)
    if args.json:
        try:
            count = write_report(report, args.json)
        except OSError as exc:
            print("cannot write %s: %s" % (args.json, exc))
            return 1
        print("wrote %s (%d series)" % (args.json, count))
    if args.prom:
        try:
            count = write_prometheus(registry, args.prom)
        except OSError as exc:
            print("cannot write %s: %s" % (args.prom, exc))
            return 1
        print("wrote %s (%d series)" % (args.prom, count))
    print(render_summary(registry, title="shards (seed %d)" % args.seed))
    print()
    _print_parallel_workload(run)
    print("telemetry: %d series | messages: %d | virtual time: %.1f"
          " | %d worker(s), %d epochs"
          % (len(registry), merged_summary(run)["messages_total"],
             run.virtual_time, run.workers, run.epochs))
    return 0


def cmd_check(args):
    from .monitor import (
        check_protocols,
        fleet_checks,
        render_report,
        run_check,
        supported_faults,
        write_report,
    )
    if args.workers is not None:
        return _cmd_check_parallel(args)
    checkable = check_protocols() + fleet_checks()
    if args.all:
        protocols = checkable
    elif args.protocol is None:
        print("usage: repro check <protocol> [--seed N] [--faults KIND] "
              "[--json PATH]  (or --all); protocols: %s"
              % ", ".join(checkable))
        return 2
    elif args.protocol not in checkable:
        print("unknown protocol %r; choices: %s"
              % (args.protocol, ", ".join(checkable)))
        return 2
    else:
        protocols = [args.protocol]
    if args.faults is not None:
        unsupported = [p for p in protocols
                       if args.faults not in supported_faults(p)]
        if unsupported:
            for protocol in unsupported:
                print("%s does not support --faults %s (supported: %s)"
                      % (protocol, args.faults,
                         ", ".join(supported_faults(protocol)) or "none"))
            return 2
    failed = False
    for index, protocol in enumerate(protocols):
        report = run_check(protocol, seed=args.seed, faults=args.faults)
        if args.json:
            try:
                write_report(report, args.json)
            except OSError as exc:
                print("cannot write %s: %s" % (args.json, exc))
                return 2
            print("wrote %s" % args.json)
        if index:
            print()
        print(render_report(report))
        failed = failed or not report["ok"]
    return 1 if failed else 0


def _cmd_check_parallel(args):
    from .monitor import render_report, write_report
    from .parallel import FleetSpec, build_check_report
    if args.all:
        print("--workers checks the sharded fleet only; drop --all")
        return 2
    if args.faults is not None:
        print("--workers does not support --faults "
              "(fault scenarios are sequential-only)")
        return 2
    if _reject_non_shards_workers(args):
        return 2
    spec = FleetSpec(seed=args.seed, workers=args.workers, monitors=True)
    run, error = _run_parallel_fleet(spec)
    if error is not None:
        print("PARALLEL RUN FAILED: %s" % error)
        return 1
    report = build_check_report(run)
    if args.json:
        try:
            write_report(report, args.json)
        except OSError as exc:
            print("cannot write %s: %s" % (args.json, exc))
            return 2
        print("wrote %s" % args.json)
    print(render_report(report))
    return 0 if report["ok"] else 1


def _emit_spans(args, trace, protocol, virtual_time, footer):
    """Shared spans output path for sequential and parallel runs."""
    from .obs import (
        SpanBuilder,
        render_spans_summary,
        render_waterfall,
        spans_report,
        to_chrome,
        write_chrome,
    )
    from .telemetry import write_report
    spans = SpanBuilder(trace).build()
    report = spans_report(spans, protocol=protocol, seed=args.seed,
                          virtual_time=virtual_time, window=args.window,
                          slo=args.slo)
    if args.json:
        try:
            write_report(report, args.json)
        except OSError as exc:
            print("cannot write %s: %s" % (args.json, exc))
            return 1
        print("wrote %s (%d span(s))" % (args.json, len(spans)))
    if args.chrome:
        try:
            count = write_chrome(to_chrome(spans, protocol), args.chrome)
        except OSError as exc:
            print("cannot write %s: %s" % (args.chrome, exc))
            return 1
        print("wrote %s (%d trace event(s))" % (args.chrome, count))
    if args.req is not None:
        wanted = [s for s in spans if s.req == args.req]
        if not wanted:
            print("no span for request %r; known: %s"
                  % (args.req, ", ".join(s.req for s in spans) or "none"))
            return 2
        for span in wanted:
            print("\n".join(render_waterfall(span)))
    else:
        print(render_spans_summary(report))
        slowest = max((s for s in spans if s.completed),
                      key=lambda s: (s.latency, s.req), default=None)
        if slowest is not None:
            print()
            print("slowest completed request:")
            print("\n".join(render_waterfall(slowest)))
    print(footer)
    return 0


def cmd_spans(args):
    if args.workers is not None:
        return _cmd_spans_parallel(args)
    runner = _RUNNERS.get(args.protocol)
    if runner is None:
        print("unknown or non-runnable protocol %r; choices: %s"
              % (args.protocol, ", ".join(sorted(_RUNNERS))))
        return 1
    cluster = Cluster(seed=args.seed, trace=True)
    summary = runner(cluster)
    footer = ("%s: %s\nspans: %d trace events | virtual time: %.1f"
              % (args.protocol, summary, len(cluster.trace), cluster.now))
    return _emit_spans(args, cluster.trace, args.protocol, cluster.now,
                       footer)


def _cmd_spans_parallel(args):
    from .parallel import FleetSpec, merge_trace
    if _reject_non_shards_workers(args):
        return 2
    spec = FleetSpec(seed=args.seed, workers=args.workers, trace=True)
    run, error = _run_parallel_fleet(spec)
    if error is not None:
        print("PARALLEL RUN FAILED: %s" % error)
        return 1
    trace = merge_trace(run)
    footer = ("spans: %d trace events | virtual time: %.1f"
              " | %d worker(s), %d epochs"
              % (len(trace), run.virtual_time, run.workers, run.epochs))
    return _emit_spans(args, trace, "shards", run.virtual_time, footer)


#: Scenario scale (n, f) per runnable protocol, for ``profile
#: --monitors``: the battery needs the cluster size the runner actually
#: drives.  Protocols absent here attach their own monitors (shards) or
#: have no spec battery.
_MONITOR_SCALES = {
    "paxos": (5, 2),
    "multi-paxos": (5, 2),
    "raft": (5, 2),
    "pbft": (4, 1),
    "hotstuff": (4, 1),
    "tendermint": (4, 1),
    "ben-or": (5, 1),
    "chandra-toueg": (5, 2),
}


def cmd_profile(args):
    """cProfile one protocol run and print the hottest call sites.

    The profiler's per-call overhead distorts small functions (the exact
    ones the hot paths optimise), so treat the output as a *map* of where
    time goes, not a benchmark — wall-clock A/B runs are the verdict.
    """
    import cProfile
    import pstats

    runner = _RUNNERS.get(args.protocol)
    if runner is None:
        print("unknown or non-runnable protocol %r; choices: %s"
              % (args.protocol, ", ".join(sorted(_RUNNERS))))
        return 1
    cluster = Cluster(seed=args.seed, telemetry=args.telemetry,
                      monitors=args.monitors)
    if args.monitors:
        scale = _MONITOR_SCALES.get(args.protocol)
        if scale is not None:
            cluster.attach_monitors(args.protocol, *scale)
        # Protocols not in the map (shards) attach their own battery.
    profiler = cProfile.Profile()
    profiler.enable()
    summary = runner(cluster)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(args.top)
    print("%s: %s" % (args.protocol, summary))
    line = ("profiled: %d events | %d messages | virtual time: %.1f"
            % (cluster.sim.events_processed,
               cluster.metrics.messages_total, cluster.now))
    if args.monitors:
        anomalies = cluster.monitors.finish()
        line += " | monitors: %d, %d anomaly(ies)" % (
            len(cluster.monitors.monitors), len(anomalies))
    print(line)
    return 0


def cmd_kv(args):
    from .smr import ReplicatedKV
    kv = ReplicatedKV(n_replicas=args.replicas, protocol=args.protocol,
                      seed=args.seed)
    kv.put("greeting", "hello")
    kv.incr("visits")
    kv.incr("visits")
    leader = kv.crash_leader()
    kv.put("post-crash", True)
    kv.settle()
    print("protocol=%s replicas=%d crashed-leader=%s" % (
        args.protocol, args.replicas, leader))
    print("greeting=%r visits=%r post-crash=%r" % (
        kv.get("greeting"), kv.get("visits"), kv.get("post-crash")))
    print("consistent:", kv.check_consistency())
    return 0


def cmd_mine(args):
    from .blockchain import run_mining_network
    cluster = Cluster(seed=args.seed)
    result = run_mining_network(
        cluster, hashrates=(600.0, 200.0, 100.0, 100.0),
        target_block_time=args.interval, duration=args.duration,
    )
    main, abandoned, rate = result.fork_stats()
    print("height=%d abandoned=%d fork-rate=%.1f%%" % (main, abandoned,
                                                       100 * rate))
    counts = result.blocks_by_miner()
    total = sum(counts.values())
    for miner, count in sorted(counts.items()):
        print("  %s: %5.1f%% of blocks" % (miner, 100 * count / total))
    return 0


def _cmd_shards_parallel(args):
    from .parallel import (
        FleetSpec,
        build_check_report,
        merged_consistency,
        merged_stats,
    )
    if args.split or args.crash_shard:
        print("--workers does not support --split/--crash-shard "
              "(reconfiguration and fault scenarios are sequential-only)")
        return 2
    try:
        spec = FleetSpec(
            seed=args.seed, n_shards=args.shards, replicas=args.replicas,
            protocol=args.protocol, partitioning=args.partitioning,
            key_space=args.keys, txns=args.txns, cross_ratio=args.cross,
            workers=args.workers, monitors=args.monitors)
    except ValueError as exc:
        print(exc)
        return 2
    print("fleet: %d shards x %d replicas = %d nodes (%s, %s-partitioned,"
          " seed %d) | %d worker(s), epoch %.1f"
          % (args.shards, args.replicas, args.shards * args.replicas,
             args.protocol, args.partitioning, args.seed, args.workers,
             spec.epoch))
    run, error = _run_parallel_fleet(spec)
    if error is not None:
        print("PARALLEL RUN FAILED: %s" % error)
        return 1
    _print_parallel_workload(run)
    consistent = all(merged_consistency(run).values())
    print("per-shard consistency: %s" % consistent)
    failed = not consistent
    if args.monitors:
        report = build_check_report(run)
        anomalies = report["anomalies"]
        print("monitors: %d anomaly(ies)" % len(anomalies))
        for anomaly in anomalies[:10]:
            print("  [%s] %s" % (anomaly["monitor"], anomaly["message"]))
        failed = failed or bool(anomalies)
    stats = merged_stats(run)
    print("totals: %d commits (%d fast-path, %d replicated decisions), "
          "%d aborts, %d conflicts, %d reroutes"
          % (stats["commits"], stats["fast_commits"],
             stats["decisions_replicated"], stats["aborts"],
             stats["conflicts"], stats["reroutes"]))
    print("parallel: %d epochs | %d events | virtual time: %.1f"
          % (run.epochs, run.total_events, run.virtual_time))
    return 1 if failed else 0


def _parse_seeds(text):
    """``A..B`` (inclusive), ``N``, or ``N,M,...`` -> list of ints, or
    None when the text does not parse."""
    text = text.strip()
    if ".." in text:
        head, _, tail = text.partition("..")
        try:
            lo, hi = int(head), int(tail)
        except ValueError:
            return None
        if hi < lo:
            return None
        return list(range(lo, hi + 1))
    try:
        return [int(part) for part in text.split(",")]
    except ValueError:
        return None


def cmd_sweep(args):
    from .parallel import sweep
    if args.protocol not in _RUNNERS:
        print("unknown or non-runnable protocol %r; choices: %s"
              % (args.protocol, ", ".join(sorted(_RUNNERS))))
        return 1
    seeds = _parse_seeds(args.seeds)
    if seeds is None:
        print("bad --seeds %r (use A..B, a single N, or N,M,...)"
              % (args.seeds,))
        return 2
    rows = sweep(args.protocol, seeds, workers=args.workers)
    for row in rows:
        print("seed %d: %s | messages: %d | virtual time: %.1f"
              % (row["seed"], row["summary"], row["messages"],
                 row["virtual_time"]))
    print("swept %d seed(s) of %s with %d worker(s)"
          % (len(rows), args.protocol, args.workers))
    return 0


def _parse_rate_sweep(text):
    """``A..B`` or ``A..B:N`` -> N (default 5) evenly spaced rates from
    A to B inclusive, or None when the text does not parse."""
    text = text.strip()
    count = 5
    if ":" in text:
        text, _, tail = text.rpartition(":")
        try:
            count = int(tail)
        except ValueError:
            return None
        if count < 2:
            return None
    head, sep, tail = text.partition("..")
    if not sep:
        return None
    try:
        lo, hi = float(head), float(tail)
    except ValueError:
        return None
    if not 0 < lo < hi:
        return None
    step = (hi - lo) / (count - 1)
    return [round(lo + i * step, 6) for i in range(count)]


def cmd_loadtest(args):
    from .load import (
        PROTOCOLS,
        LoadSpec,
        render_point,
        render_sweep,
        run_loadtest,
        run_sweep,
    )
    from .telemetry import write_report
    if args.protocol not in PROTOCOLS:
        print("unknown protocol %r; choices: %s"
              % (args.protocol, ", ".join(sorted(PROTOCOLS))))
        return 2
    if args.rate is not None and args.sweep is not None:
        print("--rate and --sweep are mutually exclusive")
        return 2
    rates = None
    if args.sweep is not None:
        rates = _parse_rate_sweep(args.sweep)
        if rates is None:
            print("bad --sweep %r (use A..B or A..B:N with 0 < A < B, "
                  "N >= 2)" % (args.sweep,))
            return 2
    try:
        spec = LoadSpec(
            protocol=args.protocol, rate=args.rate or 1.0,
            duration=args.duration, seed=args.seed, arrivals=args.arrivals,
            skew=args.skew, storm=args.storm, slo=args.slo,
            injectors=args.injectors, monitors=args.monitors)
    except ValueError as exc:
        print(exc)
        return 2
    if rates is not None:
        report = run_sweep(spec, rates, workers=args.workers or 1)
        rendered = render_sweep(report)
        points = [p for p in report["points"] if p]
        failed = any(p.get("monitors_ok") is False for p in points) or \
            any(p.get("consistent") is False for p in points)
    else:
        if (args.workers or 1) != 1:
            print("--workers parallelises sweep points; single-rate runs "
                  "are one simulation (drop --workers or add --sweep)")
            return 2
        report = run_loadtest(spec)
        rendered = render_point(report)
        accounting = report["accounting"]
        failed = bool(accounting.get("slo", {}).get("violations"))
        failed = failed or not report.get("monitors", {"ok": True})["ok"]
        failed = failed or report.get("consistent") is False
    if args.json:
        try:
            write_report(report, args.json)
        except OSError as exc:
            print("cannot write %s: %s" % (args.json, exc))
            return 2
        print("wrote %s" % args.json)
    print(rendered)
    return 1 if failed else 0


def cmd_shards(args):
    from .core.exceptions import LivenessFailure
    from .shard import ShardedCluster
    if args.workers is not None:
        return _cmd_shards_parallel(args)
    try:
        sharded = ShardedCluster(
            n_shards=args.shards, replicas=args.replicas, seed=args.seed,
            protocol=args.protocol, partitioning=args.partitioning,
            key_space=args.keys, monitors=args.monitors)
    except ValueError as exc:
        print(exc)
        return 2
    if args.split and args.partitioning != "range":
        print("--split needs --partitioning range (hash maps cannot split)")
        return 2
    print("fleet: %d shards x %d replicas = %d nodes (%s, %s-partitioned,"
          " seed %d)" % (args.shards, args.replicas,
                         args.shards * args.replicas, args.protocol,
                         args.partitioning, args.seed))
    failed = False
    try:
        first = sharded.run_workload(txns=max(args.txns // 2, 1),
                                     cross_ratio=args.cross)
        print("workload 1: %d/%d committed (%d cross-shard, %d fast-path)"
              " in %.1f virtual time"
              % (first["committed"], first["txns"], first["cross_shard"],
                 first["fast_commits"], first["virtual_time"]))
        if args.split:
            split = sharded.split_shard("s0")
            print("live split: s0 -> %s at %r, %d keys moved, %.1f virtual"
                  " time (map epoch %d)"
                  % (split["new_sid"], split["at"], split["moved_keys"],
                     split["duration"], sharded.shard_map.epoch))
        second = sharded.run_workload(txns=max(args.txns - args.txns // 2, 1),
                                      cross_ratio=args.cross)
        print("workload 2: %d/%d committed (%d cross-shard, %d fast-path)"
              " in %.1f virtual time"
              % (second["committed"], second["txns"], second["cross_shard"],
                 second["fast_commits"], second["virtual_time"]))
    except LivenessFailure as exc:
        print("LIVENESS FAILURE: %s" % exc)
        return 1
    if args.crash_shard:
        victim = "s%d" % (args.shards - 1)
        alive = sharded.key(next(
            i for i in range(args.keys)
            if sharded.shard_of(sharded.key(i)) != victim))
        dead = sharded.key(next(
            i for i in range(args.keys)
            if sharded.shard_of(sharded.key(i)) == victim))
        sharded.cluster.sim.schedule(
            5.0, lambda: sharded.crash_shard(victim))
        txn = sharded.submit(
            (alive, dead),
            lambda reads: {alive: (reads[alive] or 0) - 1,
                           dead: (reads[dead] or 0) + 1})
        sharded.cluster.run_until(lambda: txn.outcome is not None,
                                  until=sharded.now + 2000.0)
        if txn.outcome is None:
            print("CRASHED-SHARD TRANSACTION HUNG — 2PC blocked")
            return 1
        print("crashed shard %s mid-2PC: transaction %s (%d timeout "
              "abort(s)); surviving shards still serve"
              % (victim, txn.outcome, sharded.coordinator.timeout_aborts))
        failed = failed or txn.outcome != "aborted"
    sharded.settle()
    consistent = sharded.check_consistency()
    print("per-shard consistency: %s" % consistent)
    failed = failed or not consistent
    if args.monitors:
        sharded.monitors.finish()
        anomalies = sharded.monitors.anomalies
        print("monitors: %d anomaly(ies)" % len(anomalies))
        for anomaly in anomalies[:10]:
            print("  %s" % (anomaly,))
        failed = failed or bool(anomalies)
    stats = sharded.stats()
    print("totals: %d commits (%d fast-path, %d replicated decisions), "
          "%d aborts, %d conflicts, %d reroutes"
          % (stats["commits"], stats["fast_commits"],
             stats["decisions_replicated"], stats["aborts"],
             stats["conflicts"], stats["reroutes"]))
    return 1 if failed else 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro",
        description="40 Years of Consensus — run the protocols",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list",
                   help="list implemented protocols ('run' executes one, "
                        "'trace' records and renders its message flow)")
    sub.add_parser("table", help="paper-vs-measured comparison table")
    sub.add_parser("experiments",
                   help="regenerate EXPERIMENTS.md from benchmark results")
    run_parser = sub.add_parser(
        "run",
        help="run one protocol (see 'trace' for a causal message-flow "
             "recording of the same run)")
    run_parser.add_argument("protocol", help="e.g. paxos, pbft, tendermint")
    run_parser.add_argument("--seed", type=int, default=0)
    trace_parser = sub.add_parser(
        "trace",
        help="run one protocol with causal tracing and render the "
             "message flow as an ASCII space-time diagram")
    trace_parser.add_argument("protocol", help="e.g. paxos, pbft, hotstuff")
    trace_parser.add_argument("--seed", type=int, default=0)
    trace_parser.add_argument("--jsonl", metavar="PATH", default=None,
                              help="also export the trace as JSONL")
    trace_parser.add_argument("--limit", type=int, default=80,
                              help="max rendered event rows (default 80)")
    trace_parser.add_argument("--delivers", action="store_true",
                              help="also render message arrivals")
    trace_parser.add_argument("--timers", action="store_true",
                              help="also render timer firings")
    stats_parser = sub.add_parser(
        "stats",
        help="run one protocol with telemetry and print labeled counters "
             "and latency histograms (optionally exporting a deterministic "
             "JSON run report and a Prometheus text exposition)")
    stats_parser.add_argument("protocol", help="e.g. paxos, pbft, hotstuff")
    stats_parser.add_argument("--seed", type=int, default=0)
    stats_parser.add_argument("--json", metavar="PATH", default=None,
                              help="also export the JSON run report "
                                   "(same-seed byte-identical)")
    stats_parser.add_argument("--prom", metavar="PATH", default=None,
                              help="also export a Prometheus text exposition")
    check_parser = sub.add_parser(
        "check",
        help="run one protocol under live conformance monitors and "
             "cross-check the paper's property box; exits 0 when clean, "
             "1 on any anomaly, 2 on usage errors")
    check_parser.add_argument("protocol", nargs="?", default=None,
                              help="e.g. paxos, pbft, tendermint")
    check_parser.add_argument("--all", action="store_true",
                              help="check every table protocol with a "
                                   "driver")
    check_parser.add_argument("--seed", type=int, default=0)
    check_parser.add_argument("--faults", default=None, metavar="KIND",
                              help="inject a fault (per protocol: "
                                   "equivocate, silent, crash, byzantine)")
    check_parser.add_argument("--json", metavar="PATH", default=None,
                              help="also export the deterministic JSON "
                                   "conformance report")
    spans_parser = sub.add_parser(
        "spans",
        help="run one protocol with tracing, derive per-request spans "
             "and print the critical-path latency attribution (optionally "
             "a single request's waterfall, a deterministic JSON report, "
             "and a chrome://tracing export)")
    spans_parser.add_argument("protocol",
                              help="e.g. multi-paxos, raft, shards")
    spans_parser.add_argument("--seed", type=int, default=0)
    spans_parser.add_argument("--req", metavar="ID", default=None,
                              help="render one request's ASCII waterfall "
                                   "(e.g. c0-0, or a txn id)")
    spans_parser.add_argument("--slo", type=float, default=None,
                              metavar="T",
                              help="latency objective in virtual-time "
                                   "units; adds violation counts and a "
                                   "burn-rate summary")
    spans_parser.add_argument("--window", type=float, default=None,
                              metavar="W",
                              help="time-series window width in virtual "
                                   "time (default 100)")
    spans_parser.add_argument("--json", metavar="PATH", default=None,
                              help="also export the JSON spans report "
                                   "(same-seed byte-identical)")
    spans_parser.add_argument("--chrome", metavar="PATH", default=None,
                              help="also export a chrome://tracing / "
                                   "Perfetto JSON trace")
    profile_parser = sub.add_parser(
        "profile",
        help="cProfile one protocol run and print the top cumulative "
             "call sites (a map of where time goes; wall-clock A/B runs "
             "are the benchmark)")
    profile_parser.add_argument("protocol", help="e.g. paxos, pbft, hotstuff")
    profile_parser.add_argument("--seed", type=int, default=0)
    profile_parser.add_argument("--top", type=int, default=25,
                                help="rows of profile output (default 25)")
    profile_parser.add_argument("--telemetry", action="store_true",
                                help="profile with telemetry enabled (the "
                                     "instrumented hot path)")
    profile_parser.add_argument("--monitors", action="store_true",
                                help="profile with the tracer and the "
                                     "protocol's full monitor battery "
                                     "attached (the monitored hot path)")
    kv_parser = sub.add_parser("kv", help="replicated-KV demo")
    kv_parser.add_argument("--protocol", default="multi-paxos",
                           choices=("multi-paxos", "raft", "pbft"))
    kv_parser.add_argument("--replicas", type=int, default=3)
    kv_parser.add_argument("--seed", type=int, default=0)
    mine_parser = sub.add_parser("mine", help="PoW mining-network demo")
    mine_parser.add_argument("--interval", type=float, default=30.0)
    mine_parser.add_argument("--duration", type=float, default=5000.0)
    mine_parser.add_argument("--seed", type=int, default=0)
    shards_parser = sub.add_parser(
        "shards",
        help="sharded fleet demo: N consensus groups behind one keyspace, "
             "cross-shard 2PC transactions, optional live split and "
             "whole-shard crash; exits 0 when clean, 1 on any hang, "
             "anomaly or inconsistency")
    shards_parser.add_argument("--shards", type=int, default=2)
    shards_parser.add_argument("--replicas", type=int, default=3)
    shards_parser.add_argument("--protocol", default="multi-paxos",
                               choices=("multi-paxos", "raft", "mixed"))
    shards_parser.add_argument("--partitioning", default="range",
                               choices=("hash", "range"))
    shards_parser.add_argument("--keys", type=int, default=64,
                               help="generated key-universe size "
                                    "(default 64)")
    shards_parser.add_argument("--txns", type=int, default=24,
                               help="workload size (default 24)")
    shards_parser.add_argument("--cross", type=float, default=0.4,
                               help="cross-shard transaction ratio "
                                    "(default 0.4)")
    shards_parser.add_argument("--seed", type=int, default=0)
    shards_parser.add_argument("--split", action="store_true",
                               help="live-split shard s0 between the two "
                                    "workload halves (range only)")
    shards_parser.add_argument("--crash-shard", action="store_true",
                               help="crash one whole shard mid-2PC and "
                                    "verify the transaction aborts "
                                    "deterministically instead of hanging")
    shards_parser.add_argument("--monitors", action="store_true",
                               help="run under per-shard conformance "
                                    "monitors")
    shards_parser.add_argument("--workers", type=int, default=None,
                               metavar="K",
                               help="run the fleet on K parallel worker "
                                    "processes (deterministic: identical "
                                    "results at every K)")
    for extra in (trace_parser, stats_parser, check_parser, spans_parser):
        extra.add_argument("--workers", type=int, default=None, metavar="K",
                           help="shards only: run the partitioned fleet on "
                                "K parallel worker processes (merged output "
                                "is byte-identical at every K)")
    load_parser = sub.add_parser(
        "loadtest",
        help="open-loop load engine: Poisson/diurnal arrivals with "
             "Zipfian skew against one protocol, coordinated-omission-"
             "safe latency accounting, and saturation-knee detection "
             "over a rate sweep; exits 0 when clean, 1 on an SLO breach "
             "or monitor anomaly, 2 on usage errors")
    load_parser.add_argument("protocol",
                             help="multi-paxos, raft, pbft, or shards")
    load_parser.add_argument("--rate", type=float, default=None, metavar="R",
                             help="offered load in requests per virtual "
                                  "time unit (default 1.0)")
    load_parser.add_argument("--sweep", default=None, metavar="A..B[:N]",
                             help="sweep N evenly spaced offered loads "
                                  "from A to B (default N=5) and detect "
                                  "the saturation knee")
    load_parser.add_argument("--duration", type=float, default=200.0,
                             help="load window in virtual time units "
                                  "(default 200)")
    load_parser.add_argument("--seed", type=int, default=0)
    load_parser.add_argument("--arrivals", default="poisson",
                             choices=("poisson", "diurnal"),
                             help="arrival process (default poisson)")
    load_parser.add_argument("--skew", type=float, default=0.99,
                             help="Zipf skew s over the key space "
                                  "(default 0.99; 0 = uniform)")
    load_parser.add_argument("--storm", action="store_true",
                             help="hot-key storm: redirect most key "
                                  "draws to one key for the middle "
                                  "fifth of the run")
    load_parser.add_argument("--slo", type=float, default=None, metavar="T",
                             help="latency objective in virtual time "
                                  "units; violations (and never-"
                                  "completed requests) fail the run")
    load_parser.add_argument("--injectors", type=int, default=4,
                             help="simulated injector nodes carrying "
                                  "the aggregate stream (default 4)")
    load_parser.add_argument("--monitors", action="store_true",
                             help="run under the protocol's conformance "
                                  "monitor battery")
    load_parser.add_argument("--workers", type=int, default=None,
                             metavar="K",
                             help="parallel worker processes for sweep "
                                  "points (reports are byte-identical "
                                  "at every K)")
    load_parser.add_argument("--json", metavar="PATH", default=None,
                             help="also export the deterministic JSON "
                                  "report (byte-identical across "
                                  "--workers)")
    sweep_parser = sub.add_parser(
        "sweep",
        help="run one protocol across a seed range on parallel worker "
             "processes; rows always print in seed order")
    sweep_parser.add_argument("protocol", help="e.g. paxos, pbft, shards")
    sweep_parser.add_argument("--seeds", default="0..3", metavar="A..B",
                              help="seed range A..B (inclusive), a single "
                                   "N, or N,M,... (default 0..3)")
    sweep_parser.add_argument("--workers", type=int, default=1, metavar="K",
                              help="parallel worker processes (default 1)")
    args = parser.parse_args(argv)
    handler = {
        "list": cmd_list,
        "table": cmd_table,
        "experiments": cmd_experiments,
        "run": cmd_run,
        "trace": cmd_trace,
        "stats": cmd_stats,
        "check": cmd_check,
        "spans": cmd_spans,
        "profile": cmd_profile,
        "kv": cmd_kv,
        "mine": cmd_mine,
        "shards": cmd_shards,
        "sweep": cmd_sweep,
        "loadtest": cmd_loadtest,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)  # output piped into a pager/head that closed early
